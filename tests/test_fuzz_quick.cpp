// Quick fuzz tier: the *correct* algorithms must survive 64 seeds of
// every fault profile with zero required-property violations, and the
// whole campaign must be bit-deterministic — the combined digest of all
// 256 cases is pinned below. A digest change means the simulation,
// monitors, or schedule generator changed observable behaviour; rerun
// with ECFD_PRINT_FUZZ_DIGEST=1 to print the new value, review the diff
// that caused it, and update the constant deliberately.
//
// The deep campaign (hundreds of seeds per profile, shrinking, repro
// files) lives in tools/ecfd_fuzz; this tier is the ctest-sized slice.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "check/fuzz.hpp"
#include "runner/fingerprint.hpp"
#include "runner/thread_pool.hpp"

namespace ecfd::check {
namespace {

constexpr int kSeeds = 64;
constexpr FuzzProfile kProfiles[] = {
    FuzzProfile::kCrash,
    FuzzProfile::kPartition,
    FuzzProfile::kLossDelay,
    FuzzProfile::kChurn,
};

// Pinned digest of all 4 profiles x 64 seeds (ecfd_c on the ring stack).
// Computed by this test itself: ECFD_PRINT_FUZZ_DIGEST=1 prints it.
constexpr std::uint64_t kCampaignDigest = 0x1646cc442f775713ULL;

struct CaseResult {
  std::uint64_t digest{0};
  int violations{0};
  bool decided{false};
  std::string detail;
};

CaseResult run_one(FuzzProfile profile, std::uint64_t seed) {
  FuzzCaseConfig cfg;
  cfg.profile = profile;
  cfg.seed = seed;
  const FuzzOutcome out = run_fuzz_case(cfg);
  CaseResult r;
  r.digest = out.digest;
  r.violations = static_cast<int>(out.violations.size());
  r.decided = out.every_correct_decided;
  for (const Verdict& v : out.violations) {
    r.detail += std::string(profile_name(profile)) + " seed " +
                std::to_string(seed) + ": " + v.to_string() + "\n";
  }
  return r;
}

TEST(FuzzQuick, CorrectStackSurvivesAllProfilesDigestPinned) {
  std::vector<CaseResult> results(kSeeds * std::size(kProfiles));
  runner::parallel_for(results.size(), runner::ThreadPool::default_threads(),
                       [&](std::size_t i) {
                         const FuzzProfile prof =
                             kProfiles[i / kSeeds];
                         const std::uint64_t seed = 1 + i % kSeeds;
                         results[i] = run_one(prof, seed);
                       });

  runner::Fnv1a combined;
  int total_violations = 0;
  int undecided = 0;
  for (const CaseResult& r : results) {
    combined.u64(r.digest);
    total_violations += r.violations;
    if (!r.decided) ++undecided;
    if (r.violations > 0) ADD_FAILURE() << r.detail;
  }
  EXPECT_EQ(total_violations, 0);
  EXPECT_EQ(undecided, 0) << undecided << " cases left a correct process "
                          << "undecided at the horizon";

  if (std::getenv("ECFD_PRINT_FUZZ_DIGEST") != nullptr) {
    std::printf("campaign digest: 0x%016llx\n",
                static_cast<unsigned long long>(combined.value()));
  }
  EXPECT_EQ(combined.value(), kCampaignDigest)
      << "campaign digest drifted: got 0x" << std::hex << combined.value()
      << " — rerun with ECFD_PRINT_FUZZ_DIGEST=1 and review";
}

// --- the WAN/geo scenario pack -------------------------------------------
//
// Same contract for the four WAN profiles, pinned separately so the LAN
// digest above stays byte-stable evidence that the scenario pack changed
// nothing about pre-existing behaviour.

constexpr FuzzProfile kWanProfiles[] = {
    FuzzProfile::kGeo,
    FuzzProfile::kFlap,
    FuzzProfile::kGray,
    FuzzProfile::kSkew,
};

constexpr std::uint64_t kWanCampaignDigest = 0xcd4b5cea3ac4068fULL;

TEST(FuzzQuick, WanPackSurvivesAllProfilesDigestPinned) {
  std::vector<CaseResult> results(kSeeds * std::size(kWanProfiles));
  runner::parallel_for(results.size(), runner::ThreadPool::default_threads(),
                       [&](std::size_t i) {
                         const FuzzProfile prof = kWanProfiles[i / kSeeds];
                         const std::uint64_t seed = 1 + i % kSeeds;
                         results[i] = run_one(prof, seed);
                       });

  runner::Fnv1a combined;
  int total_violations = 0;
  int undecided = 0;
  for (const CaseResult& r : results) {
    combined.u64(r.digest);
    total_violations += r.violations;
    if (!r.decided) ++undecided;
    if (r.violations > 0) ADD_FAILURE() << r.detail;
  }
  EXPECT_EQ(total_violations, 0);
  EXPECT_EQ(undecided, 0) << undecided << " cases left a correct process "
                          << "undecided at the horizon";

  if (std::getenv("ECFD_PRINT_FUZZ_DIGEST") != nullptr) {
    std::printf("wan campaign digest: 0x%016llx\n",
                static_cast<unsigned long long>(combined.value()));
  }
  EXPECT_EQ(combined.value(), kWanCampaignDigest)
      << "WAN campaign digest drifted: got 0x" << std::hex << combined.value()
      << " — rerun with ECFD_PRINT_FUZZ_DIGEST=1 and review";
}

TEST(FuzzQuick, AdaptiveStackSurvivesTheWanPack) {
  // The QoS-adaptive ◇P under every WAN profile, with eventual *strong*
  // accuracy required — the end-to-end claim of the adaptive source.
  std::atomic<int> violations{0};
  std::vector<std::string> details(std::size(kWanProfiles) * 8);
  runner::parallel_for(details.size(), runner::ThreadPool::default_threads(),
                       [&](std::size_t i) {
                         FuzzCaseConfig cfg;
                         cfg.profile = kWanProfiles[i / 8];
                         cfg.seed = 101 + i % 8;
                         cfg.fd = consensus::FdStack::kHeartbeatAdaptive;
                         cfg.require_strong_accuracy = true;
                         const FuzzOutcome out = run_fuzz_case(cfg);
                         if (!out.ok) {
                           violations.fetch_add(1);
                           details[i] = out.violations.front().to_string();
                         }
                       });
  EXPECT_EQ(violations.load(), 0);
  for (const std::string& d : details) {
    if (!d.empty()) ADD_FAILURE() << d;
  }
}

TEST(FuzzQuick, ScalableStacksSurviveMixedProfiles) {
  // The two O(n)-message ◇C constructions (hierarchical and SWIM) across
  // crash, churn, WAN-geo and gray-failure profiles, with eventual strong
  // accuracy required — the class-membership claim behind the E13 scale
  // experiment, at ctest size (the deep campaigns run in tools/ecfd_fuzz
  // and nightly).
  constexpr consensus::FdStack kStacks[] = {consensus::FdStack::kHierC,
                                            consensus::FdStack::kSwim};
  constexpr FuzzProfile kMixed[] = {FuzzProfile::kCrash, FuzzProfile::kChurn,
                                    FuzzProfile::kGeo, FuzzProfile::kGray};
  constexpr int kSeedsPerCell = 4;
  std::atomic<int> violations{0};
  std::vector<std::string> details(std::size(kStacks) * std::size(kMixed) *
                                   kSeedsPerCell);
  runner::parallel_for(details.size(), runner::ThreadPool::default_threads(),
                       [&](std::size_t i) {
                         const std::size_t per_stack =
                             std::size(kMixed) * kSeedsPerCell;
                         FuzzCaseConfig cfg;
                         cfg.fd = kStacks[i / per_stack];
                         cfg.profile = kMixed[(i % per_stack) / kSeedsPerCell];
                         cfg.seed = 201 + i % kSeedsPerCell;
                         cfg.require_strong_accuracy = true;
                         const FuzzOutcome out = run_fuzz_case(cfg);
                         if (!out.ok) {
                           violations.fetch_add(1);
                           details[i] = out.violations.front().to_string();
                         }
                       });
  EXPECT_EQ(violations.load(), 0);
  for (const std::string& d : details) {
    if (!d.empty()) ADD_FAILURE() << d;
  }
}

TEST(FuzzQuick, ScheduleGeneratorRespectsInvariants) {
  for (FuzzProfile prof : kProfiles) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      FuzzCaseConfig cfg;
      cfg.profile = prof;
      cfg.seed = seed;
      const FaultSchedule s = generate_schedule(cfg);
      SCOPED_TRACE(std::string(profile_name(prof)) + " seed " +
                   std::to_string(seed));
      // A majority must stay alive.
      EXPECT_LE(crashed_in(s, cfg.n).size(), (cfg.n - 1) / 2);
      TimeUs last_partition_end = 0;
      TimeUs last_chaos_end = 0;
      for (const FaultEvent& e : s.events) {
        switch (e.kind) {
          case FaultEvent::Kind::kCrash:
            EXPECT_LT(e.at, cfg.chaos_end);
            break;
          case FaultEvent::Kind::kPartitionWindow:
            EXPECT_GE(e.at, last_partition_end) << "windows must not overlap";
            EXPECT_GT(e.until, e.at);
            EXPECT_LE(e.until, cfg.chaos_end);
            EXPECT_GT(e.group.size(), 0);
            EXPECT_LT(e.group.size(), cfg.n);
            last_partition_end = e.until;
            break;
          case FaultEvent::Kind::kChaosWindow:
            EXPECT_GE(e.at, last_chaos_end) << "windows must not overlap";
            EXPECT_GT(e.until, e.at);
            EXPECT_LE(e.until, cfg.chaos_end);
            EXPECT_TRUE(e.chaos.active());
            last_chaos_end = e.until;
            break;
          default:
            ADD_FAILURE() << "WAN event kind in a LAN profile schedule";
        }
      }
      // Determinism of generation itself.
      const FaultSchedule again = generate_schedule(cfg);
      ASSERT_EQ(again.events.size(), s.events.size());
    }
  }
}

}  // namespace
}  // namespace ecfd::check
