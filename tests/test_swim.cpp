// Tests for the SWIM gossip membership detector (fd/swim.hpp): class-◇C
// membership under crashes, indirect probing masking a bad direct link,
// suspicion + refutation across a partition/heal, the O(1)-per-node
// steady-state message bound, and bitwise determinism at n=256.
#include "fd/swim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::run_fd_scenario;

testutil::Installer installer(fd::SwimFd::Config cfg = {}) {
  return [cfg](ProcessHost& host, ProcessId,
               std::vector<std::shared_ptr<void>>&) {
    auto& f = host.emplace<fd::SwimFd>(cfg);
    return testutil::OracleRefs{&f, &f};
  };
}

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(250), msec(50));
}

TEST(Swim, IsEventuallyConsistentUnderCrashes) {
  auto cfg = base_scenario(8, 1);
  cfg.with_crash(2, msec(700)).with_crash(5, sec(1));
  auto res = run_fd_scenario(cfg, installer(), sec(10));
  EXPECT_TRUE(res.report.is_eventually_perfect());
  EXPECT_TRUE(res.report.is_eventually_consistent());
  EXPECT_EQ(res.report.omega_leader, 0);
}

TEST(Swim, LowestIdCrashMovesTrust) {
  auto cfg = base_scenario(6, 2);
  cfg.with_crash(0, msec(800));
  auto res = run_fd_scenario(cfg, installer(), sec(10));
  EXPECT_TRUE(res.report.is_eventually_consistent());
  EXPECT_EQ(res.report.omega_leader, 1);
}

TEST(Swim, IndirectProbesMaskOneBadLinkPair) {
  // The SWIM selling point: p0<->p1 is severed in BOTH directions, so
  // every direct probe between them dies — yet neither may suspect the
  // other, because ping-req relays (p2..) still reach the target and route
  // the ack back. A plain heartbeat detector suspects here; SWIM must not.
  const int n = 6;
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 3;
  cfg.links = LinkKind::kReliable;
  auto sys = make_system(cfg);
  std::vector<fd::SwimFd*> fds;
  for (ProcessId p = 0; p < n; ++p) {
    fds.push_back(&sys->host(p).emplace<fd::SwimFd>());
  }
  sys->network().set_blocked(0, 1, true);
  sys->network().set_blocked(1, 0, true);
  sys->start();
  sys->run_until(sec(5));
  EXPECT_FALSE(fds[0]->suspected().contains(1));
  EXPECT_FALSE(fds[1]->suspected().contains(0));
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_TRUE(fds[p]->suspected().empty()) << "false suspicion at p" << p;
  }
}

TEST(Swim, RefutationClearsSuspicionAfterHeal) {
  // Partition {p0,p1} away long enough for both sides to suspect — and
  // with the default 400ms suspicion timeout, declare — each other dead.
  // After heal, pings carry the stale claims to their subjects (see
  // SwimFd::attach_subject_state), the victims refute at a higher
  // incarnation, and every suspicion must clear: alive-overrides-dead is
  // exactly what keeps this detector in ◇C after a split un-happens.
  const int n = 8;
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 4;
  cfg.links = LinkKind::kReliable;
  auto sys = make_system(cfg);
  std::vector<fd::SwimFd*> fds;
  for (ProcessId p = 0; p < n; ++p) {
    fds.push_back(&sys->host(p).emplace<fd::SwimFd>());
  }
  sys->start();
  sys->run_until(msec(500));
  sys->network().partition(testutil::minority(n, 2));
  sys->run_until(sec(3));
  EXPECT_TRUE(fds[4]->suspected().contains(0));
  EXPECT_TRUE(fds[0]->suspected().contains(4));
  sys->network().heal();
  sys->run_until(sec(12));
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_TRUE(fds[p]->suspected().empty())
        << "unrefuted suspicion at p" << p;
    EXPECT_EQ(fds[p]->trusted(), 0) << "trust at p" << p;
  }
  // The refutations happened by outliving the death verdicts, not by
  // forgetting them: both isolated processes must have bumped their
  // incarnation past the majority's claims.
  EXPECT_GT(fds[0]->incarnation(), 0u);
  EXPECT_GT(fds[1]->incarnation(), 0u);
}

TEST(Swim, SteadyStateMessageCostIsConstantPerNode) {
  // One direct probe per node per period: ping + ack = 2 messages per node
  // per period in a healthy cluster, independent of n.
  const int n = 64;
  auto cfg = base_scenario(n, 5);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  for (ProcessId p = 0; p < n; ++p) sys->host(p).emplace<fd::SwimFd>();
  sys->start();
  sys->run_until(sec(1));
  const auto before = sys->network().sent_total();
  sys->run_until(sec(3));
  const auto sent = sys->network().sent_total() - before;
  fd::SwimFd::Config defaults;
  const double periods = static_cast<double>(sec(2)) / defaults.period;
  EXPECT_LT(static_cast<double>(sent), periods * 2.5 * n);
  EXPECT_GT(static_cast<double>(sent), periods * 1.5 * n);
}

TEST(Swim, DeterministicAtN256) {
  auto run_once = [](std::vector<ProcessSet>* susp, std::int64_t* sent) {
    auto cfg = base_scenario(256, 6);
    cfg.with_crash(129, msec(600));
    auto sys = make_system(cfg);
    std::vector<fd::SwimFd*> fds;
    for (ProcessId p = 0; p < 256; ++p) {
      fds.push_back(&sys->host(p).emplace<fd::SwimFd>());
    }
    sys->start();
    sys->run_until(sec(3));
    for (auto* f : fds) susp->push_back(f->suspected());
    *sent = sys->network().sent_total();
  };
  std::vector<ProcessSet> susp_a, susp_b;
  std::int64_t sent_a = 0, sent_b = 0;
  run_once(&susp_a, &sent_a);
  run_once(&susp_b, &sent_b);
  EXPECT_EQ(sent_a, sent_b);
  ASSERT_EQ(susp_a.size(), susp_b.size());
  for (std::size_t i = 0; i < susp_a.size(); ++i) {
    EXPECT_EQ(susp_a[i], susp_b[i]) << "membership diverged at p" << i;
  }
  EXPECT_TRUE(susp_a[0].contains(129));
}

TEST(Swim, UnmutatedPassesGrayDisseminatorScenario) {
  // The exact scenario check/fuzz.cpp uses to catch Mutant::
  // kDroppedRefutation, with the hook OFF: p1 is gray (3x slow timers,
  // +30ms on every send), which provokes real false suspicions — the
  // healthy detector must refute them all and keep eventual strong
  // accuracy (promised in check/mutants.hpp).
  const int n = 5;
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 7;
  cfg.links = LinkKind::kReliable;
  cfg.with_crash(n - 1, sec(2));
  auto sys = make_system(cfg);
  std::vector<std::shared_ptr<void>> keepalive;
  FdProbe probe(*sys, msec(5));
  for (ProcessId p = 0; p < n; ++p) {
    auto& f = sys->host(p).emplace<fd::SwimFd>();
    probe.attach(p, &f, &f);
  }
  sys->host(1).set_gray(3000, msec(30));
  const TimeUs horizon = sec(10);
  probe.start(horizon);
  sys->start();
  sys->run_until(horizon);
  RunFacts facts;
  facts.n = n;
  facts.correct = ProcessSet::full(n);
  facts.correct.remove(n - 1);
  facts.end_time = horizon;
  const FdReport report = check_fd_properties(facts, probe.samples());
  EXPECT_TRUE(report.strong_completeness.holds);
  EXPECT_TRUE(report.eventual_strong_accuracy.holds);
  EXPECT_TRUE(report.is_eventually_consistent());
}

}  // namespace
}  // namespace ecfd
