// Scale tests for the sharded threaded runtime: hundreds of virtual hosts
// on a handful of worker threads, with the FD property monitor attached and
// a leader crash mid-run. Wall-clock and nondeterministic, so every verdict
// is an eventual property checked against a generous real-time deadline —
// the methodology is E9's (see EXPERIMENTS.md), not the simulator's
// determinism.
//
// Naming: tests matching *N256* are registered as a separate `slow` ctest
// entry; the rest run in tier1.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "check/thread_monitor.hpp"
#include "fd/hier_c.hpp"
#include "fd/stable_leader.hpp"
#include "runtime/thread_env.hpp"

namespace ecfd::runtime {
namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Crashes the initial leader mid-run and requires every surviving host to
/// converge on one replacement leader, with the property monitor watching.
void leader_crash_converges(int n) {
  ThreadSystem::Config cfg;
  cfg.n = n;
  cfg.seed = 20260806;
  cfg.min_delay = usec(50);
  cfg.max_delay = msec(2);
  cfg.trace_depth = 8;  // violation reports carry recent host events
  ThreadSystem sys(cfg);

  std::vector<fd::StableLeader*> leaders;
  leaders.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    fd::StableLeader::Config lc;
    lc.period = msec(50);
    lc.initial_timeout = msec(250);
    lc.timeout_increment = msec(100);
    leaders.push_back(&sys.host(p).emplace<fd::StableLeader>(lc));
  }

  // p0 is the initial argmin leader and the process we will crash.
  check::FdPropertyMonitor::Config mc;
  mc.n = n;
  mc.correct = ProcessSet(n);
  for (ProcessId p = 1; p < n; ++p) mc.correct.add(p);
  mc.check_suspect = false;
  mc.check_leader = true;
  check::ThreadedFdMonitor mon(sys, mc);
  for (ProcessId p = 0; p < n; ++p) {
    mon.attach(p, nullptr, leaders[static_cast<std::size_t>(p)]);
  }

  sys.start();
  sleep_ms(500);  // let the initial leadership settle
  sys.host(0).crash();

  // Sample until every live host trusts the same non-crashed leader, or
  // the (generous) deadline passes.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool agreed = false;
  while (!agreed && std::chrono::steady_clock::now() < deadline) {
    mon.sample(msec(2000));
    // Agreement counts once it has held across samples for a beat, not on
    // a single lucky snapshot.
    for (const auto& v : mon.monitor().verdicts()) {
      if (v.property == "fd.leader_agreement" &&
          v.state == check::VerdictState::kHolding &&
          mon.monitor().last_observed() - v.holds_since >= msec(500)) {
        agreed = true;
      }
    }
    if (!agreed) sleep_ms(200);
  }
  EXPECT_TRUE(agreed) << "hosts failed to agree on a leader after the crash\n"
                      << mon.violation_report();

  // The monitor's full report must be empty once everything stabilized
  // long enough — but leader_stability legitimately records the change
  // when p0 died, so only agreement is asserted here.
  for (const auto& v : mon.monitor().verdicts()) {
    if (v.property == "fd.leader_agreement") {
      EXPECT_NE(v.state, check::VerdictState::kViolated);
    }
  }
}

TEST(RuntimeScale, LeaderCrashConvergesN64) { leader_crash_converges(64); }

TEST(RuntimeScale, LeaderCrashConvergesN256) { leader_crash_converges(256); }

// Construction/teardown at n=1024 — the configuration the old
// thread-per-process design could not reliably reach — plus a short live
// window with message traffic, as a smoke of the sharded executor's
// bring-up and shutdown paths.
TEST(RuntimeScale, ConstructsAndRunsN1024) {
  ThreadSystem::Config cfg;
  cfg.n = 1024;
  cfg.seed = 42;
  cfg.min_delay = usec(50);
  cfg.max_delay = msec(1);
  ThreadSystem sys(cfg);
  EXPECT_GE(sys.workers(), 1);
  std::vector<fd::StableLeader*> leaders;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    fd::StableLeader::Config lc;
    lc.period = msec(200);
    lc.initial_timeout = msec(800);
    lc.timeout_increment = msec(200);
    leaders.push_back(&sys.host(p).emplace<fd::StableLeader>(lc));
  }
  sys.start();
  sleep_ms(800);
  // Read one oracle on its own executor to prove the system is live.
  std::atomic<ProcessId> seen{kNoProcess};
  sys.host(1).post([&seen, &leaders]() { seen = leaders[1]->trusted(); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (seen.load() == kNoProcess &&
         std::chrono::steady_clock::now() < deadline) {
    sleep_ms(50);
  }
  EXPECT_NE(seen.load(), kNoProcess);
}

// Bring-up smoke at n=4096 on the hierarchical ◇C stack with cell-aware
// placement (shard_block = cell size pins each √n-cell to one worker).
// One mid-range member crashes; a host in a DIFFERENT cell must adopt the
// suspicion through the full reporting chain — cell leader detects, top
// leader composes, digest gossips down. Registered as a `slow` ctest entry.
TEST(RuntimeScale, HierDigestReachesRemoteCellN4096) {
  const int n = 4096;
  ThreadSystem::Config cfg;
  cfg.n = n;
  cfg.seed = 13;
  cfg.min_delay = usec(50);
  cfg.max_delay = msec(1);
  cfg.shard_block = 64;  // = ceil(sqrt(4096)), HierC's default cell size
  ThreadSystem sys(cfg);
  std::vector<fd::HierC*> fds;
  fds.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    fd::HierC::Config hc;
    hc.period = msec(200);
    hc.initial_timeout = msec(600);
    hc.timeout_increment = msec(200);
    fds.push_back(&sys.host(p).emplace<fd::HierC>(hc));
  }
  ASSERT_EQ(fds[0]->cell_size(), 64);
  sys.start();
  sleep_ms(2000);  // let both hierarchy levels elect and settle

  const ProcessId victim = 2049;  // cell 32, not its leader
  sys.host(victim).crash();

  // Observer p1 sits in cell 0 — it can only learn of the crash through
  // the composed digest. Poll its oracle on its own executor.
  std::atomic<bool> adopted{false};
  auto poller = std::make_shared<std::function<void()>>();
  *poller = [&sys, &adopted, &fds, poller, victim]() {
    if (fds[1]->suspected().contains(victim)) {
      adopted.store(true);
      return;
    }
    sys.host(1).post_at(sys.now() + msec(100), [poller]() { (*poller)(); });
  };
  sys.host(1).post([poller]() { (*poller)(); });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!adopted.load() && std::chrono::steady_clock::now() < deadline) {
    sleep_ms(100);
  }
  EXPECT_TRUE(adopted.load())
      << "cell-0 observer never adopted the remote crash into its digest";
}

}  // namespace
}  // namespace ecfd::runtime
