#include "fd/heartbeat_p.hpp"

#include <gtest/gtest.h>

#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::holds_with_margin;
using testutil::run_fd_scenario;

testutil::Installer heartbeat_installer() {
  return [](ProcessHost& host, ProcessId,
            std::vector<std::shared_ptr<void>>&) {
    auto& hb = host.emplace<fd::HeartbeatP>();
    return testutil::OracleRefs{&hb, nullptr};
  };
}

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(300), msec(80));
}

TEST(HeartbeatP, FailureFreeRunIsAccurate) {
  auto res = run_fd_scenario(base_scenario(5, 1), heartbeat_installer(),
                             sec(5));
  EXPECT_TRUE(res.report.eventual_strong_accuracy.holds);
  EXPECT_TRUE(res.report.strong_completeness.holds);  // vacuous
  EXPECT_TRUE(holds_with_margin(res.report.eventual_strong_accuracy,
                                res.horizon, sec(2)))
      << "accuracy should stabilize well before the horizon";
}

TEST(HeartbeatP, CrashesArePermanentlySuspected) {
  auto cfg = base_scenario(5, 2);
  cfg.with_crash(1, msec(600)).with_crash(4, sec(1));
  auto res = run_fd_scenario(cfg, heartbeat_installer(), sec(5));
  EXPECT_TRUE(res.report.is_eventually_perfect())
      << "SC from=" << res.report.strong_completeness.from
      << " ESA from=" << res.report.eventual_strong_accuracy.from;
}

TEST(HeartbeatP, SurvivesCrashBeforeGst) {
  auto cfg = base_scenario(4, 3);
  cfg.with_crash(0, msec(100));  // crash during the chaotic period
  auto res = run_fd_scenario(cfg, heartbeat_installer(), sec(5));
  EXPECT_TRUE(res.report.is_eventually_perfect());
  EXPECT_NE(res.report.ewa_witness, 0);
}

TEST(HeartbeatP, TimeoutsAdaptUpward) {
  // Direct check of the adaptive mechanism: pre-GST delays above the
  // initial timeout must have widened at least one pair's timeout.
  ScenarioConfig cfg = base_scenario(3, 4);
  cfg.pre_gst_max = msec(200);
  cfg.gst = msec(500);
  auto sys = make_system(cfg);
  std::vector<fd::HeartbeatP*> hbs;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    hbs.push_back(&sys->host(p).emplace<fd::HeartbeatP>());
  }
  sys->start();
  sys->run_until(sec(3));
  fd::HeartbeatP::Config defaults;
  bool widened = false;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    for (ProcessId q = 0; q < cfg.n; ++q) {
      if (p != q && hbs[p]->timeout_of(q) > defaults.initial_timeout) {
        widened = true;
      }
    }
  }
  EXPECT_TRUE(widened);
  // And despite the mistakes, the final output is accurate again.
  for (ProcessId p = 0; p < cfg.n; ++p) {
    EXPECT_TRUE(hbs[p]->suspected().empty())
        << "p" << p << " still suspects " << hbs[p]->suspected().to_string();
  }
}

TEST(HeartbeatP, QuadraticMessageCost) {
  // n(n-1) messages per period: measure over a window and compare.
  ScenarioConfig cfg = base_scenario(6, 5);
  cfg.gst = 0;  // synchronous from the start; cost is the steady state
  auto sys = make_system(cfg);
  for (ProcessId p = 0; p < cfg.n; ++p) sys->host(p).emplace<fd::HeartbeatP>();
  sys->start();
  sys->run_until(sec(2));
  const auto sent = sys->counters().get("msg.hb_p.alive.sent");
  fd::HeartbeatP::Config defaults;
  const double periods = static_cast<double>(sec(2)) / defaults.period;
  const double expected = periods * cfg.n * (cfg.n - 1);
  EXPECT_NEAR(static_cast<double>(sent), expected, expected * 0.05);
}

// Property sweep: ◇P must hold across seeds and crash patterns.
struct SweepParam {
  std::uint64_t seed;
  int n;
  int crashes;
};

class HeartbeatPSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(HeartbeatPSweep, EventuallyPerfect) {
  const SweepParam param = GetParam();
  auto cfg = base_scenario(param.n, param.seed);
  // Crash the last `crashes` processes at staggered times.
  for (int i = 0; i < param.crashes; ++i) {
    cfg.with_crash(param.n - 1 - i, msec(200) + i * msec(300));
  }
  auto res = run_fd_scenario(cfg, heartbeat_installer(), sec(6));
  EXPECT_TRUE(res.report.is_eventually_perfect())
      << "seed=" << param.seed << " n=" << param.n
      << " crashes=" << param.crashes;
  EXPECT_TRUE(holds_with_margin(res.report.strong_completeness, res.horizon,
                                sec(1)));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, HeartbeatPSweep,
    ::testing::Values(SweepParam{11, 4, 1}, SweepParam{12, 5, 2},
                      SweepParam{13, 6, 2}, SweepParam{14, 7, 3},
                      SweepParam{15, 5, 0}, SweepParam{16, 3, 1},
                      SweepParam{17, 9, 4}, SweepParam{18, 8, 3}));

}  // namespace
}  // namespace ecfd
