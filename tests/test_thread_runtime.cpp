// Integration tests for the non-simulated, std::thread-based runtime.
// These runs are nondeterministic; assertions are eventual with generous
// real-time deadlines.
#include "runtime/thread_env.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "broadcast/reliable_broadcast.hpp"
#include "core/consensus_c.hpp"
#include "core/ecfd_compose.hpp"
#include "fd/heartbeat_p.hpp"
#include "net/protocol_ids.hpp"

namespace ecfd::runtime {
namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Waits up to `deadline_ms`, polling `pred` every 20ms.
bool eventually(int deadline_ms, const std::function<bool()>& pred) {
  for (int waited = 0; waited < deadline_ms; waited += 20) {
    if (pred()) return true;
    sleep_ms(20);
  }
  return pred();
}

class Counter final : public Protocol {
 public:
  explicit Counter(Env& env) : Protocol(env, protocol_ids::kTesting) {}
  void on_message(const Message& m) override {
    if (m.type == 1) ++received;
  }
  void send_to(ProcessId dst) {
    env_.send(dst, Message::make_empty(protocol_id(), 1, "t.msg"));
  }
  std::atomic<int> received{0};
};

TEST(ThreadRuntime, DeliversMessagesAcrossThreads) {
  ThreadSystem::Config cfg;
  cfg.n = 3;
  cfg.seed = 1;
  ThreadSystem sys(cfg);
  std::vector<Counter*> cs;
  for (ProcessId p = 0; p < 3; ++p) cs.push_back(&sys.host(p).emplace<Counter>());
  sys.start();
  for (int i = 0; i < 10; ++i) cs[0]->send_to(1);
  EXPECT_TRUE(eventually(3000, [&] { return cs[1]->received.load() == 10; }));
  EXPECT_EQ(cs[2]->received.load(), 0);
}

TEST(ThreadRuntime, TimersFire) {
  ThreadSystem::Config cfg;
  cfg.n = 1;
  ThreadSystem sys(cfg);
  sys.host(0).emplace<Counter>();
  sys.start();
  std::atomic<bool> fired{false};
  sys.host(0).post([&sys, &fired]() {
    sys.host(0).set_timer(msec(30), [&fired]() { fired = true; });
  });
  EXPECT_TRUE(eventually(2000, [&] { return fired.load(); }));
}

TEST(ThreadRuntime, CancelledTimerDoesNotFire) {
  ThreadSystem::Config cfg;
  cfg.n = 1;
  ThreadSystem sys(cfg);
  sys.host(0).emplace<Counter>();
  sys.start();
  std::atomic<bool> fired{false};
  std::atomic<bool> armed{false};
  sys.host(0).post([&]() {
    TimerId id = sys.host(0).set_timer(msec(200), [&fired]() { fired = true; });
    sys.host(0).cancel_timer(id);
    armed = true;
  });
  EXPECT_TRUE(eventually(2000, [&] { return armed.load(); }));
  sleep_ms(400);
  EXPECT_FALSE(fired.load());
}

TEST(ThreadRuntime, CrashedHostGoesSilent) {
  ThreadSystem::Config cfg;
  cfg.n = 2;
  ThreadSystem sys(cfg);
  std::vector<Counter*> cs;
  for (ProcessId p = 0; p < 2; ++p) cs.push_back(&sys.host(p).emplace<Counter>());
  sys.start();
  sys.host(1).crash();
  cs[0]->send_to(1);
  sleep_ms(300);
  EXPECT_EQ(cs[1]->received.load(), 0);
}

TEST(ThreadRuntime, HeartbeatDetectorSeesACrash) {
  ThreadSystem::Config cfg;
  cfg.n = 3;
  cfg.seed = 3;
  cfg.min_delay = usec(100);
  cfg.max_delay = msec(2);
  ThreadSystem sys(cfg);
  std::vector<fd::HeartbeatP*> hbs;
  for (ProcessId p = 0; p < 3; ++p) {
    fd::HeartbeatP::Config hc;
    hc.period = msec(20);
    hc.initial_timeout = msec(100);
    hbs.push_back(&sys.host(p).emplace<fd::HeartbeatP>(hc));
  }
  sys.start();
  sleep_ms(300);  // let heartbeats flow
  sys.host(2).crash();
  EXPECT_TRUE(eventually(5000, [&] {
    return hbs[0]->suspected().contains(2) && hbs[1]->suspected().contains(2);
  }));
  EXPECT_FALSE(hbs[0]->suspected().contains(1));
}

TEST(ThreadRuntime, ConsensusOnRealThreads) {
  // The full paper stack — heartbeat ◇P -> ◇C adapter -> ConsensusC with
  // reliable broadcast — running on actual threads.
  constexpr int kN = 3;
  ThreadSystem::Config cfg;
  cfg.n = kN;
  cfg.seed = 4;
  cfg.min_delay = usec(100);
  cfg.max_delay = msec(2);
  ThreadSystem sys(cfg);

  std::vector<std::unique_ptr<core::EcfdFromP>> oracles;
  std::vector<core::ConsensusC*> cons;
  for (ProcessId p = 0; p < kN; ++p) {
    fd::HeartbeatP::Config hc;
    hc.period = msec(20);
    hc.initial_timeout = msec(100);
    auto& hb = sys.host(p).emplace<fd::HeartbeatP>(hc);
    oracles.push_back(std::make_unique<core::EcfdFromP>(&hb));
    auto& rb = sys.host(p).emplace<broadcast::ReliableBroadcast>();
    core::ConsensusC::Config cc;
    cc.poll_period = msec(10);
    cons.push_back(&sys.host(p).emplace<core::ConsensusC>(
        oracles.back().get(), &rb, cc));
  }
  // Decision results cross threads: collect them via the decide callback
  // under a mutex rather than poking protocol state from the test thread.
  std::mutex mu;
  std::vector<consensus::Value> decided;
  for (auto* c : cons) {
    c->set_on_decide([&mu, &decided](const consensus::Decision& d) {
      std::lock_guard<std::mutex> lock(mu);
      decided.push_back(d.value);
    });
  }

  sys.start();
  for (ProcessId p = 0; p < kN; ++p) {
    auto& host = sys.host(p);
    core::ConsensusC* c = cons[static_cast<std::size_t>(p)];
    host.post([c, p]() { c->propose(1000 + p); });
  }
  ASSERT_TRUE(eventually(10000, [&] {
    std::lock_guard<std::mutex> lock(mu);
    return decided.size() == static_cast<std::size_t>(kN);
  })) << "consensus must terminate on the threaded runtime";
  std::lock_guard<std::mutex> lock(mu);
  for (consensus::Value v : decided) {
    EXPECT_EQ(v, decided.front());
    EXPECT_GE(v, 1000);
    EXPECT_LT(v, 1000 + kN);
  }
}

TEST(ThreadRuntime, LegacyEscapeHatchStillDelivers) {
  ThreadSystem::Config cfg;
  cfg.n = 3;
  cfg.seed = 7;
  cfg.legacy_thread_per_process = true;
  ThreadSystem sys(cfg);
  std::vector<Counter*> cs;
  for (ProcessId p = 0; p < 3; ++p) cs.push_back(&sys.host(p).emplace<Counter>());
  sys.start();
  for (int i = 0; i < 10; ++i) cs[0]->send_to(1);
  std::atomic<bool> fired{false};
  sys.host(2).post([&sys, &fired]() {
    sys.host(2).set_timer(msec(20), [&fired]() { fired = true; });
  });
  EXPECT_TRUE(eventually(3000, [&] {
    return cs[1]->received.load() == 10 && fired.load();
  }));
}

// Regression for the old runtime's cancel_timer leak: cancelling an
// already-fired timer used to insert a tombstone that nothing ever erased.
// Both executors must end a busy arm/fire/cancel cycle with zero pending
// timers and zero bookkeeping records.
TEST(ThreadRuntime, TimerBookkeepingDrainsAfterQuiescence) {
  for (const bool legacy : {false, true}) {
    SCOPED_TRACE(legacy ? "legacy" : "sharded");
    ThreadSystem::Config cfg;
    cfg.n = 1;
    cfg.seed = 11;
    cfg.legacy_thread_per_process = legacy;
    ThreadSystem sys(cfg);
    sys.host(0).emplace<Counter>();
    sys.start();
    std::mutex mu;
    std::vector<TimerId> ids;
    std::atomic<int> fired{0};
    sys.host(0).post([&]() {
      for (int i = 0; i < 50; ++i) {
        TimerId id =
            sys.host(0).set_timer(msec(1 + i % 5), [&fired]() { ++fired; });
        std::lock_guard<std::mutex> lock(mu);
        ids.push_back(id);
      }
      for (int i = 0; i < 50; ++i) {
        TimerId id = sys.host(0).set_timer(msec(40), []() {});
        sys.host(0).cancel_timer(id);  // cancel before fire, on owner
      }
    });
    ASSERT_TRUE(eventually(5000, [&] { return fired.load() == 50; }));
    {
      // Cancel every already-fired timer from a foreign thread — the exact
      // sequence that used to leak one record per call, forever.
      std::lock_guard<std::mutex> lock(mu);
      for (TimerId id : ids) sys.host(0).cancel_timer(id);
      for (TimerId id : ids) sys.host(0).cancel_timer(id);  // and twice
    }
    sleep_ms(100);  // let legacy tombstones reach their deadline
    EXPECT_TRUE(eventually(3000, [&] {
      return sys.host(0).pending_timers() == 0 &&
             sys.host(0).bookkeeping_records() == 0;
    })) << "pending=" << sys.host(0).pending_timers()
        << " bookkeeping=" << sys.host(0).bookkeeping_records();
  }
}

// set_timer/cancel_timer from a non-worker thread (how tests and monitors
// drive hosts) must fire/cancel correctly and leave no indirection records.
TEST(ThreadRuntime, ForeignThreadTimersFireAndCancel) {
  ThreadSystem::Config cfg;
  cfg.n = 2;
  cfg.seed = 13;
  ThreadSystem sys(cfg);
  sys.host(0).emplace<Counter>();
  sys.host(1).emplace<Counter>();
  sys.start();
  std::atomic<bool> fired{false};
  std::atomic<bool> cancelled_fired{false};
  TimerId a = sys.host(0).set_timer(msec(30), [&fired]() { fired = true; });
  EXPECT_NE(a, kInvalidTimer);
  TimerId b = sys.host(1).set_timer(
      msec(150), [&cancelled_fired]() { cancelled_fired = true; });
  sys.host(1).cancel_timer(b);
  EXPECT_TRUE(eventually(3000, [&] { return fired.load(); }));
  sleep_ms(250);
  EXPECT_FALSE(cancelled_fired.load());
  EXPECT_TRUE(eventually(3000, [&] {
    return sys.host(0).bookkeeping_records() == 0 &&
           sys.host(1).bookkeeping_records() == 0 &&
           sys.host(0).pending_timers() == 0 &&
           sys.host(1).pending_timers() == 0;
  }));
}

TEST(ThreadRuntime, TraceRingKeepsLastEvents) {
#if defined(ECFD_OBS_DISABLED)
  GTEST_SKIP() << "trace() lands in the obs recorder, compiled out here";
#endif
  ThreadSystem::Config cfg;
  cfg.n = 1;
  cfg.trace_depth = 4;
  ThreadSystem sys(cfg);
  sys.host(0).emplace<Counter>();
  sys.start();
  std::atomic<bool> done{false};
  sys.host(0).post([&]() {
    for (int i = 0; i < 10; ++i) {
      sys.host(0).trace("t.ring", std::to_string(i));
    }
    done = true;
  });
  ASSERT_TRUE(eventually(3000, [&] { return done.load(); }));
  const auto tr = sys.host(0).recent_trace();
  ASSERT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr[0].detail, "6");
  EXPECT_EQ(tr[3].detail, "9");
  for (const auto& rec : tr) EXPECT_EQ(rec.tag, "t.ring");
}

TEST(ThreadRuntime, TraceIsOffByDefault) {
  ThreadSystem::Config cfg;
  cfg.n = 1;
  ThreadSystem sys(cfg);
  sys.host(0).emplace<Counter>();
  sys.start();
  std::atomic<bool> done{false};
  sys.host(0).post([&]() {
    sys.host(0).trace("t.ring", "x");
    done = true;
  });
  ASSERT_TRUE(eventually(3000, [&] { return done.load(); }));
  EXPECT_TRUE(sys.host(0).recent_trace().empty());
}

// A protocol timer that cancels itself from inside its own callback (and
// re-arms) must not corrupt the wheel — the mid-fire cancel path.
TEST(ThreadRuntime, SelfCancelInsideCallbackIsSafe) {
  ThreadSystem::Config cfg;
  cfg.n = 1;
  cfg.seed = 17;
  ThreadSystem sys(cfg);
  sys.host(0).emplace<Counter>();
  sys.start();
  std::atomic<int> fires{0};
  struct Rearm {
    ThreadSystem& sys;
    std::atomic<int>& fires;
    TimerId id{kInvalidTimer};
    void tick() {
      sys.host(0).cancel_timer(id);  // cancelling the firing timer: no-op
      if (++fires < 5) {
        id = sys.host(0).set_timer(msec(5), [this]() { tick(); });
      }
    }
  };
  auto rearm = std::make_shared<Rearm>(Rearm{sys, fires});
  sys.host(0).post([rearm]() {
    rearm->id = rearm->sys.host(0).set_timer(msec(5), [rearm]() mutable {
      rearm->tick();
    });
  });
  EXPECT_TRUE(eventually(5000, [&] { return fires.load() == 5; }));
  EXPECT_TRUE(eventually(3000, [&] {
    return sys.host(0).pending_timers() == 0;
  }));
}

}  // namespace
}  // namespace ecfd::runtime
