#include "broadcast/reliable_broadcast.hpp"
#include "net/scenario.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ecfd::broadcast {
namespace {

struct RbWorld {
  std::unique_ptr<System> sys;
  std::vector<ReliableBroadcast*> rb;
  std::vector<std::vector<std::string>> delivered;  // per process
};

RbWorld make(int n, std::uint64_t seed, ScenarioConfig cfg = {}) {
  cfg.n = n;
  cfg.seed = seed;
  RbWorld s;
  s.sys = make_system(cfg);
  s.delivered.resize(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    auto& rb = s.sys->host(p).emplace<ReliableBroadcast>();
    rb.set_deliver([&s, p](const RbEnvelope& e) {
      s.delivered[static_cast<std::size_t>(p)].push_back(e.as<std::string>());
    });
    s.rb.push_back(&rb);
  }
  s.sys->start();
  return s;
}

TEST(ReliableBroadcast, ValidityAllCorrectDeliver) {
  RbWorld s = make(4, 1);
  s.rb[0]->r_broadcast(1, std::string("hello"));
  s.sys->run_until(sec(1));
  for (int p = 0; p < 4; ++p) {
    ASSERT_EQ(s.delivered[p].size(), 1u) << "process " << p;
    EXPECT_EQ(s.delivered[p][0], "hello");
  }
}

TEST(ReliableBroadcast, UniformIntegrityNoDuplicates) {
  RbWorld s = make(5, 2);
  s.rb[1]->r_broadcast(1, std::string("x"));
  s.rb[1]->r_broadcast(1, std::string("y"));
  s.sys->run_until(sec(1));
  for (int p = 0; p < 5; ++p) {
    EXPECT_EQ(s.delivered[p].size(), 2u);
  }
}

TEST(ReliableBroadcast, LocalDeliveryIsImmediate) {
  RbWorld s = make(3, 3);
  s.rb[2]->r_broadcast(7, std::string("self"));
  // No simulation time elapsed: the broadcaster has already delivered.
  EXPECT_EQ(s.delivered[2].size(), 1u);
}

TEST(ReliableBroadcast, AgreementUnderLossyLinksViaDiffusion) {
  ScenarioConfig cfg;
  cfg.links = LinkKind::kFairLossy;
  cfg.loss_p = 0.4;
  cfg.force_deliver_every = 5;
  RbWorld s = make(5, 4, cfg);
  s.rb[0]->r_broadcast(1, std::string("m"));
  s.sys->run_until(sec(2));
  // Diffusion: everyone relays on first receipt, so even heavy loss cannot
  // keep a correct process from delivering (n*(n-1) chances).
  for (int p = 0; p < 5; ++p) {
    EXPECT_EQ(s.delivered[p].size(), 1u) << "process " << p;
  }
}

TEST(ReliableBroadcast, AgreementWhenOriginCrashesAfterSending) {
  RbWorld s = make(4, 5);
  s.rb[3]->r_broadcast(1, std::string("last words"));
  s.sys->crash_now(3);  // crashes right after broadcasting
  s.sys->run_until(sec(1));
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(s.delivered[p].size(), 1u) << "process " << p;
  }
}

TEST(ReliableBroadcast, CrashedProcessDoesNotDeliver) {
  RbWorld s = make(3, 6);
  s.sys->crash_now(2);
  s.rb[0]->r_broadcast(1, std::string("m"));
  s.sys->run_until(sec(1));
  EXPECT_TRUE(s.delivered[2].empty());
}

TEST(ReliableBroadcast, ManyBroadcastsAllArrive) {
  RbWorld s = make(4, 7);
  for (int i = 0; i < 20; ++i) {
    s.rb[i % 4]->r_broadcast(1, std::string("m") + std::to_string(i));
  }
  s.sys->run_until(sec(2));
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(s.delivered[p].size(), 20u);
  }
}

TEST(ReliableBroadcast, EnvelopeCarriesOriginAndTag) {
  ScenarioConfig cfg;
  cfg.n = 2;
  cfg.seed = 8;
  auto sys = make_system(cfg);
  ProcessId got_origin = kNoProcess;
  int got_tag = 0;
  auto& rb0 = sys->host(0).emplace<ReliableBroadcast>();
  rb0.set_deliver([&](const RbEnvelope& e) {
    got_origin = e.origin;
    got_tag = e.tag;
  });
  auto& rb1 = sys->host(1).emplace<ReliableBroadcast>();
  rb1.set_deliver([](const RbEnvelope&) {});
  sys->start();
  rb1.r_broadcast(42, std::string("z"));
  sys->run_until(sec(1));
  EXPECT_EQ(got_origin, 1);
  EXPECT_EQ(got_tag, 42);
}

}  // namespace
}  // namespace ecfd::broadcast
