#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "net/scenario.hpp"

/// \file scenario_util.hpp
/// Scenario construction and seed-handling helpers shared by the test
/// suites. Before this header every FD/partition suite carried its own
/// copy of base_scenario()/minority(); they differed only in the GST and
/// pre-GST bound, so the copies collapse into one parameterized builder.

namespace ecfd::testutil {

/// The canonical partial-synchrony scenario: delta = 5ms after \p gst,
/// arbitrary delays bounded by \p pre_gst_max before it.
inline ScenarioConfig partial_sync_scenario(int n, std::uint64_t seed,
                                            TimeUs gst = msec(250),
                                            DurUs pre_gst_max = msec(50)) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = gst;
  cfg.delta = msec(5);
  cfg.pre_gst_max = pre_gst_max;
  return cfg;
}

/// {p0 .. p_{k-1}} — the group isolated by partition tests.
inline ProcessSet minority(int n, int k) {
  ProcessSet s(n);
  for (int i = 0; i < k; ++i) s.add(i);
  return s;
}

/// ECFD_SEED=N reruns every seed-parameterized fuzz suite with exactly
/// that seed (decimal or 0x-hex), replacing the default seed lists.
inline std::optional<std::uint64_t> env_seed() {
  const char* s = std::getenv("ECFD_SEED");
  if (s == nullptr || *s == '\0') return std::nullopt;
  return std::strtoull(s, nullptr, 0);
}

/// The seed list a fuzz suite instantiates over: the ECFD_SEED override
/// when set, \p defaults otherwise.
inline std::vector<std::uint64_t> fuzz_seeds(
    std::vector<std::uint64_t> defaults) {
  if (const auto s = env_seed()) return {*s};
  return defaults;
}

/// Test-name generator so failures show the seed itself ("…/seed7"), not
/// a positional index.
inline std::string seed_name(
    const ::testing::TestParamInfo<std::uint64_t>& info) {
  return "seed" + std::to_string(info.param);
}

/// SCOPED_TRACE message: how to rerun exactly this case.
inline std::string seed_trace(std::uint64_t seed) {
  return "rerun just this case with: ECFD_SEED=" + std::to_string(seed) +
         " ctest -R <suite>";
}

}  // namespace ecfd::testutil
