#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ecfd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, RangeDegenerate) {
  Rng r(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.range(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng r(23);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const DurUs d = r.exponential(1000);
    ASSERT_GE(d, 0);
    sum += static_cast<double>(d);
  }
  EXPECT_NEAR(sum / kSamples, 1000.0, 60.0);
}

TEST(Rng, ExponentialZeroMean) {
  Rng r(29);
  EXPECT_EQ(r.exponential(0), 0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // The child stream should differ from the parent continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(37), b(37);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next(), cb.next());
}

}  // namespace
}  // namespace ecfd
