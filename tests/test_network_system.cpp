#include "net/protocol_ids.hpp"
#include "net/scenario.hpp"
#include "net/system.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ecfd {
namespace {

/// Minimal protocol: counts received PINGs, echoes PONGs.
class PingPong final : public Protocol {
 public:
  explicit PingPong(Env& env) : Protocol(env, protocol_ids::kTesting) {}

  void on_message(const Message& m) override {
    if (m.type == 1) {
      ++pings;
      env_.send(m.src, Message::make_empty(protocol_id(), 2, "test.pong"));
    } else if (m.type == 2) {
      ++pongs;
    }
  }

  void ping(ProcessId dst) {
    env_.send(dst, Message::make_empty(protocol_id(), 1, "test.ping"));
  }

  int pings{0};
  int pongs{0};
};

std::vector<PingPong*> install_pingpong(System& sys) {
  std::vector<PingPong*> out;
  for (ProcessId p = 0; p < sys.n(); ++p) {
    out.push_back(&sys.host(p).emplace<PingPong>());
  }
  return out;
}

TEST(Network, DeliversMessagesBothWays) {
  System sys(3, 1);
  auto pp = install_pingpong(sys);
  sys.start();
  pp[0]->ping(1);
  pp[0]->ping(2);
  sys.run_until(sec(1));
  EXPECT_EQ(pp[1]->pings, 1);
  EXPECT_EQ(pp[2]->pings, 1);
  EXPECT_EQ(pp[0]->pongs, 2);
}

TEST(Network, SelfSendDelivered) {
  System sys(2, 1);
  auto pp = install_pingpong(sys);
  sys.start();
  pp[0]->ping(0);
  sys.run_until(msec(10));
  EXPECT_EQ(pp[0]->pings, 1);
  EXPECT_EQ(pp[0]->pongs, 1);
}

TEST(Network, CountsSentByLabel) {
  System sys(2, 1);
  auto pp = install_pingpong(sys);
  sys.start();
  pp[0]->ping(1);
  pp[0]->ping(1);
  sys.run_until(sec(1));
  EXPECT_EQ(sys.counters().get("msg.test.ping.sent"), 2);
  EXPECT_EQ(sys.counters().get("msg.test.pong.sent"), 2);
}

TEST(Network, BlockedLinkDropsSilently) {
  System sys(2, 1);
  auto pp = install_pingpong(sys);
  sys.network().set_blocked(0, 1, true);
  sys.start();
  pp[0]->ping(1);
  sys.run_until(sec(1));
  EXPECT_EQ(pp[1]->pings, 0);
  EXPECT_EQ(sys.network().dropped_total(), 1);
}

TEST(Network, PartitionAndHeal) {
  System sys(4, 1);
  auto pp = install_pingpong(sys);
  ProcessSet left(4);
  left.add(0);
  left.add(1);
  sys.network().partition(left);
  sys.start();
  pp[0]->ping(1);  // same side: delivered
  pp[0]->ping(2);  // across: dropped
  sys.run_until(sec(1));
  EXPECT_EQ(pp[1]->pings, 1);
  EXPECT_EQ(pp[2]->pings, 0);

  sys.network().heal();
  pp[0]->ping(2);
  sys.run_until(sec(2));
  EXPECT_EQ(pp[2]->pings, 1);
}

TEST(System, CrashedProcessIsSilent) {
  System sys(3, 1);
  auto pp = install_pingpong(sys);
  sys.start();
  sys.crash_now(1);
  pp[0]->ping(1);
  sys.run_until(sec(1));
  EXPECT_EQ(pp[1]->pings, 0) << "crashed host must not receive";

  // And it must not send either.
  pp[1]->ping(0);
  sys.run_until(sec(2));
  EXPECT_EQ(pp[0]->pings, 0);
}

TEST(System, CrashAtFiresOnSchedule) {
  System sys(2, 1);
  install_pingpong(sys);
  sys.crash_at(1, msec(100));
  sys.start();
  sys.run_until(msec(50));
  EXPECT_FALSE(sys.host(1).crashed());
  sys.run_until(msec(150));
  EXPECT_TRUE(sys.host(1).crashed());
  EXPECT_EQ(sys.host(1).crash_time(), msec(100));
}

TEST(System, AliveAndCrashedSets) {
  System sys(4, 1);
  install_pingpong(sys);
  sys.start();
  sys.crash_now(2);
  const ProcessSet alive = sys.alive();
  EXPECT_TRUE(alive.contains(0) && alive.contains(1) && alive.contains(3));
  EXPECT_FALSE(alive.contains(2));
  EXPECT_TRUE(sys.crashed().contains(2));
  EXPECT_EQ(sys.crashed().size(), 1);
}

TEST(System, TimersCancelledOnCrash) {
  System sys(2, 1);
  auto pp = install_pingpong(sys);
  sys.start();
  // Host 1 arms a timer that would ping host 0.
  bool fired = false;
  sys.host(1).set_timer(msec(100), [&] {
    fired = true;
    pp[1]->ping(0);
  });
  sys.crash_at(1, msec(50));
  sys.run_until(sec(1));
  EXPECT_FALSE(fired);
  EXPECT_EQ(pp[0]->pings, 0);
}

TEST(System, CancelTimerStopsIt) {
  System sys(1, 1);
  install_pingpong(sys);
  sys.start();
  bool fired = false;
  const TimerId id = sys.host(0).set_timer(msec(10), [&] { fired = true; });
  sys.host(0).cancel_timer(id);
  sys.run_until(sec(1));
  EXPECT_FALSE(fired);
}

TEST(System, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.seed = seed;
    cfg.links = LinkKind::kReliable;
    auto sys = make_system(cfg);
    std::vector<PingPong*> pp;
    for (ProcessId p = 0; p < sys->n(); ++p) {
      pp.push_back(&sys->host(p).emplace<PingPong>());
    }
    sys->start();
    for (int i = 0; i < 20; ++i) pp[0]->ping(1 + (i % 3));
    sys->run_until(sec(1));
    return sys->network().delivered_total();
  };
  EXPECT_EQ(run_once(99), run_once(99));
}

TEST(Scenario, MakeSystemAppliesCrashes) {
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.seed = 5;
  cfg.with_crash(2, msec(10));
  auto sys = make_system(cfg);
  for (ProcessId p = 0; p < 3; ++p) sys->host(p).emplace<PingPong>();
  sys->start();
  sys->run_until(msec(20));
  EXPECT_TRUE(sys->host(2).crashed());
}

TEST(Trace, CapturesSendAndCrashEvents) {
  System sys(2, 1);
  sys.trace().enable();
  auto pp = install_pingpong(sys);
  sys.start();
  pp[0]->ping(1);
  sys.run_until(msec(50));
  sys.crash_now(1);
  int sends = 0;
  sys.trace().for_tag("net.send", [&](const sim::TraceEvent&) { ++sends; });
  EXPECT_EQ(sends, 2) << "ping + pong";
  int crashes = 0;
  sys.trace().for_tag("crash", [&](const sim::TraceEvent& e) {
    ++crashes;
    EXPECT_EQ(e.process, 1);
  });
  EXPECT_EQ(crashes, 1);
}

TEST(Scenario, FairLossyLinksLoseSomeMessages) {
  ScenarioConfig cfg;
  cfg.n = 2;
  cfg.seed = 7;
  cfg.links = LinkKind::kFairLossy;
  cfg.loss_p = 0.5;
  auto sys = make_system(cfg);
  std::vector<PingPong*> pp;
  for (ProcessId p = 0; p < 2; ++p) {
    pp.push_back(&sys->host(p).emplace<PingPong>());
  }
  sys->start();
  for (int i = 0; i < 100; ++i) pp[0]->ping(1);
  sys->run_until(sec(5));
  EXPECT_LT(pp[1]->pings, 100);
  EXPECT_GT(pp[1]->pings, 20) << "fairness keeps some getting through";
}

}  // namespace
}  // namespace ecfd
