// Tests for the timeout-free Heartbeat detector (fd/heartbeat_counter.hpp,
// Aguilera-Chen-Toueg, the paper's reference [1]).
#include "fd/heartbeat_counter.hpp"

#include <gtest/gtest.h>

#include "net/scenario.hpp"

namespace ecfd {
namespace {

struct World {
  std::unique_ptr<System> sys;
  std::vector<fd::HeartbeatCounter*> hb;
};

World make(int n, std::uint64_t seed, LinkKind links) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.links = links;
  cfg.loss_p = 0.3;  // only used by kFairLossy
  World w;
  w.sys = make_system(cfg);
  for (ProcessId p = 0; p < n; ++p) {
    w.hb.push_back(&w.sys->host(p).emplace<fd::HeartbeatCounter>());
  }
  w.sys->start();
  return w;
}

TEST(HeartbeatCounter, CorrectCountersKeepIncreasing) {
  auto w = make(4, 1, LinkKind::kReliable);
  w.sys->run_until(sec(1));
  const auto mid = w.hb[0]->counters();
  w.sys->run_until(sec(2));
  for (ProcessId q = 0; q < 4; ++q) {
    EXPECT_GT(w.hb[0]->counter(q), mid[static_cast<std::size_t>(q)])
        << "p" << q << " counter must keep growing (HB-accuracy)";
  }
}

TEST(HeartbeatCounter, CrashedCounterStopsIncreasing) {
  auto w = make(4, 2, LinkKind::kReliable);
  w.sys->crash_at(3, sec(1));
  w.sys->run_until(sec(2));  // generous margin past in-flight beats
  const auto frozen = w.hb[0]->counter(3);
  w.sys->run_until(sec(4));
  EXPECT_EQ(w.hb[0]->counter(3), frozen) << "HB-completeness";
  EXPECT_GT(w.hb[0]->counter(1), 0u);
}

TEST(HeartbeatCounter, NoTimingAssumptionsAsyncLinks) {
  // Exponential unbounded delays: HB still works — counters of correct
  // processes grow, no notion of "mistake" exists.
  auto w = make(3, 3, LinkKind::kAsync);
  w.sys->run_until(sec(2));
  for (ProcessId p = 0; p < 3; ++p) {
    for (ProcessId q = 0; q < 3; ++q) {
      EXPECT_GT(w.hb[p]->counter(q), 50u) << "p" << p << " about p" << q;
    }
  }
}

TEST(HeartbeatCounter, WorksOverFairLossyLinks) {
  // Loss merely slows counters: growth continues (the quiescent-
  // communication use case from [1]).
  auto w = make(3, 4, LinkKind::kFairLossy);
  w.sys->run_until(sec(1));
  const auto mid = w.hb[0]->counter(1);
  EXPECT_GT(mid, 0u);
  w.sys->run_until(sec(2));
  EXPECT_GT(w.hb[0]->counter(1), mid);
}

TEST(HeartbeatCounter, OwnCounterTracksOwnBeats) {
  auto w = make(2, 5, LinkKind::kReliable);
  w.sys->run_until(sec(1));
  fd::HeartbeatCounter::Config defaults;
  const double expected = static_cast<double>(sec(1)) / defaults.period;
  EXPECT_NEAR(static_cast<double>(w.hb[0]->counter(0)), expected,
              expected * 0.05);
}

}  // namespace
}  // namespace ecfd
