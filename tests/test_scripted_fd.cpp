#include "fd/scripted_fd.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"

namespace ecfd {
namespace {

TEST(ScriptedFd, FollowsTimeline) {
  System sys(3, 1);
  ProcessSet s1(3), s2(3);
  s1.add(2);
  s2.add(1);
  std::vector<fd::ScriptedFd::Step> steps;
  steps.push_back({0, s1, 0});
  steps.push_back({msec(100), s2, 1});
  auto& fd = sys.host(0).emplace<fd::ScriptedFd>(steps);
  sys.start();

  EXPECT_EQ(fd.suspected(), s1);
  EXPECT_EQ(fd.trusted(), 0);
  sys.run_until(msec(150));
  EXPECT_EQ(fd.suspected(), s2);
  EXPECT_EQ(fd.trusted(), 1);
}

TEST(ScriptedFd, ExactBoundaryUsesNewStep) {
  System sys(2, 1);
  std::vector<fd::ScriptedFd::Step> steps;
  steps.push_back({0, ProcessSet(2), 0});
  steps.push_back({msec(50), ProcessSet::full(2), 1});
  auto& fd = sys.host(0).emplace<fd::ScriptedFd>(steps);
  sys.start();
  sys.run_until(msec(50));
  EXPECT_EQ(fd.trusted(), 1);
}

TEST(StableScript, ChaosThenStable) {
  const int n = 4;
  ProcessSet crashed(n);
  crashed.add(3);
  auto steps = fd::stable_script(n, /*self=*/1, crashed, /*leader=*/0,
                                 msec(200));
  ASSERT_EQ(steps.size(), 2u);
  // Chaos phase: suspect everyone but self, trust self.
  EXPECT_EQ(steps[0].at, 0);
  EXPECT_FALSE(steps[0].suspected.contains(1));
  EXPECT_EQ(steps[0].suspected.size(), n - 1);
  EXPECT_EQ(steps[0].trusted, 1);
  // Stable phase: exactly the crashed set, common leader.
  EXPECT_EQ(steps[1].at, msec(200));
  EXPECT_TRUE(steps[1].suspected.contains(3));
  EXPECT_EQ(steps[1].suspected.size(), 1);
  EXPECT_EQ(steps[1].trusted, 0);
}

TEST(StableScript, SelfNeverSuspected) {
  const int n = 3;
  ProcessSet crashed(n);
  crashed.add(1);
  auto steps = fd::stable_script(n, /*self=*/1, crashed, 0, msec(10));
  // Even if the script says p1 crashes, p1's own module must not suspect
  // itself (a crashed process's output is never consulted anyway).
  EXPECT_FALSE(steps[1].suspected.contains(1));
}

}  // namespace
}  // namespace ecfd
