// Unit tests for the property checkers themselves, on hand-built sample
// timelines (no simulation involved).
#include "fd/properties.hpp"

#include <gtest/gtest.h>

namespace ecfd {
namespace {

constexpr int kN = 4;

FdSample sample_at(TimeUs t) {
  FdSample s;
  s.time = t;
  s.suspected.resize(kN);
  s.trusted.resize(kN);
  return s;
}

RunFacts facts_with_faulty(std::initializer_list<ProcessId> faulty,
                           TimeUs end = 1000) {
  RunFacts f;
  f.n = kN;
  f.correct = ProcessSet::full(kN);
  for (ProcessId q : faulty) f.correct.remove(q);
  f.end_time = end;
  return f;
}

// Everyone correct outputs `susp` and trusts `leader` at every sample.
std::vector<FdSample> uniform_timeline(const RunFacts& f,
                                       const ProcessSet& susp,
                                       ProcessId leader, int count = 5) {
  std::vector<FdSample> out;
  for (int i = 0; i < count; ++i) {
    FdSample s = sample_at((i + 1) * 100);
    for (ProcessId p : f.correct.members()) {
      s.suspected[static_cast<std::size_t>(p)] = susp;
      s.trusted[static_cast<std::size_t>(p)] = leader;
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(FdProperties, PerfectDetectorIsEverything) {
  RunFacts f = facts_with_faulty({3});
  ProcessSet susp(kN);
  susp.add(3);
  auto samples = uniform_timeline(f, susp, 0);
  FdReport r = check_fd_properties(f, samples);
  EXPECT_TRUE(r.is_eventually_perfect());
  EXPECT_TRUE(r.is_eventually_strong());
  EXPECT_TRUE(r.is_eventually_weak());
  EXPECT_TRUE(r.is_omega());
  EXPECT_EQ(r.omega_leader, 0);
  EXPECT_TRUE(r.is_eventually_consistent());
  EXPECT_EQ(r.ewa_witness, 0);
}

TEST(FdProperties, MissingCrashedSuspectBreaksCompleteness) {
  RunFacts f = facts_with_faulty({3});
  ProcessSet empty(kN);
  auto samples = uniform_timeline(f, empty, 0);
  FdReport r = check_fd_properties(f, samples);
  EXPECT_FALSE(r.strong_completeness.holds);
  EXPECT_FALSE(r.weak_completeness.holds);
  EXPECT_TRUE(r.eventual_strong_accuracy.holds);
}

TEST(FdProperties, SuspectingACorrectProcessForeverBreaksStrongAccuracy) {
  RunFacts f = facts_with_faulty({});
  ProcessSet susp(kN);
  susp.add(1);  // p1 is correct but permanently suspected
  auto samples = uniform_timeline(f, susp, 0);
  FdReport r = check_fd_properties(f, samples);
  EXPECT_FALSE(r.eventual_strong_accuracy.holds);
  // Weak accuracy survives: p0 (for instance) is never suspected.
  EXPECT_TRUE(r.eventual_weak_accuracy.holds);
  EXPECT_NE(r.ewa_witness, 1);
}

TEST(FdProperties, WeakCompletenessAllowsDifferentWitnesses) {
  RunFacts f = facts_with_faulty({2, 3});
  std::vector<FdSample> samples;
  for (int i = 0; i < 5; ++i) {
    FdSample s = sample_at((i + 1) * 100);
    // p0 suspects only p2; p1 suspects only p3: weak but not strong.
    ProcessSet s0(kN), s1(kN);
    s0.add(2);
    s1.add(3);
    s.suspected[0] = s0;
    s.suspected[1] = s1;
    samples.push_back(std::move(s));
  }
  FdReport r = check_fd_properties(f, samples);
  EXPECT_TRUE(r.weak_completeness.holds);
  EXPECT_FALSE(r.strong_completeness.holds);
}

TEST(FdProperties, EventualMeansSuffixNotAlways) {
  RunFacts f = facts_with_faulty({3});
  ProcessSet good(kN);
  good.add(3);
  ProcessSet chaotic = ProcessSet::full(kN);
  chaotic.remove(0);
  std::vector<FdSample> samples;
  // Chaos for 3 samples, then stable for 4.
  for (int i = 0; i < 7; ++i) {
    FdSample s = sample_at((i + 1) * 100);
    for (ProcessId p : f.correct.members()) {
      s.suspected[static_cast<std::size_t>(p)] = (i < 3) ? chaotic : good;
      s.trusted[static_cast<std::size_t>(p)] = (i < 3) ? p : 1;
    }
    samples.push_back(std::move(s));
  }
  FdReport r = check_fd_properties(f, samples);
  EXPECT_TRUE(r.is_eventually_perfect());
  EXPECT_EQ(r.eventual_strong_accuracy.from, 400);
  EXPECT_TRUE(r.omega.holds);
  EXPECT_EQ(r.omega_leader, 1);
  EXPECT_EQ(r.omega.from, 400);
}

TEST(FdProperties, OmegaFailsWhenLeadersDisagreeForever) {
  RunFacts f = facts_with_faulty({});
  std::vector<FdSample> samples;
  for (int i = 0; i < 5; ++i) {
    FdSample s = sample_at((i + 1) * 100);
    for (ProcessId p = 0; p < kN; ++p) {
      s.trusted[static_cast<std::size_t>(p)] = p % 2;  // p0/p2 vs p1/p3
      s.suspected[static_cast<std::size_t>(p)] = ProcessSet(kN);
    }
    samples.push_back(std::move(s));
  }
  FdReport r = check_fd_properties(f, samples);
  EXPECT_FALSE(r.omega.holds);
}

TEST(FdProperties, OmegaFailsWhenCommonLeaderIsFaulty) {
  RunFacts f = facts_with_faulty({3});
  ProcessSet susp(kN);
  susp.add(3);
  auto samples = uniform_timeline(f, susp, /*leader=*/3);
  FdReport r = check_fd_properties(f, samples);
  EXPECT_FALSE(r.omega.holds) << "trusting a crashed process is not Omega";
}

TEST(FdProperties, CouplingClauseDetected) {
  RunFacts f = facts_with_faulty({});
  // Everyone trusts p0 but also suspects p0: ◇S + Omega hold, ◇C fails.
  ProcessSet susp(kN);
  susp.add(0);
  std::vector<FdSample> samples;
  for (int i = 0; i < 5; ++i) {
    FdSample s = sample_at((i + 1) * 100);
    for (ProcessId p = 1; p < kN; ++p) {
      s.suspected[static_cast<std::size_t>(p)] = susp;
      s.trusted[static_cast<std::size_t>(p)] = 0;
    }
    s.suspected[0] = ProcessSet(kN);
    s.trusted[0] = 0;
    samples.push_back(std::move(s));
  }
  FdReport r = check_fd_properties(f, samples);
  EXPECT_TRUE(r.omega.holds);
  EXPECT_FALSE(r.ecfd_coupling.holds);
  EXPECT_FALSE(r.is_eventually_consistent());
}

TEST(FdProperties, NoSamplesMeansNothingHolds) {
  RunFacts f = facts_with_faulty({});
  FdReport r = check_fd_properties(f, {});
  EXPECT_FALSE(r.strong_completeness.holds);
  EXPECT_FALSE(r.omega.holds);
}

TEST(FdProperties, NoFaultyProcessesCompletenessVacuous) {
  RunFacts f = facts_with_faulty({});
  auto samples = uniform_timeline(f, ProcessSet(kN), 0);
  FdReport r = check_fd_properties(f, samples);
  EXPECT_TRUE(r.strong_completeness.holds);
  EXPECT_TRUE(r.weak_completeness.holds);
}

TEST(FdProperties, LeaderOnlyDetectorEvaluatesOmegaOnly) {
  RunFacts f = facts_with_faulty({});
  std::vector<FdSample> samples;
  for (int i = 0; i < 4; ++i) {
    FdSample s = sample_at((i + 1) * 100);
    for (ProcessId p = 0; p < kN; ++p) {
      s.trusted[static_cast<std::size_t>(p)] = 2;
    }
    samples.push_back(std::move(s));
  }
  FdReport r = check_fd_properties(f, samples);
  EXPECT_TRUE(r.omega.holds);
  EXPECT_EQ(r.omega_leader, 2);
  EXPECT_FALSE(r.strong_completeness.holds);  // unevaluated -> false
}

TEST(FdProperties, StableFromReportsLatestStabilization) {
  RunFacts f = facts_with_faulty({3});
  ProcessSet susp(kN);
  susp.add(3);
  std::vector<FdSample> samples;
  for (int i = 0; i < 6; ++i) {
    FdSample s = sample_at((i + 1) * 100);
    for (ProcessId p : f.correct.members()) {
      s.suspected[static_cast<std::size_t>(p)] = susp;
      // Leaders agree only from sample 3 (t=400).
      s.trusted[static_cast<std::size_t>(p)] = (i < 3) ? p : 0;
    }
    samples.push_back(std::move(s));
  }
  FdReport r = check_fd_properties(f, samples);
  EXPECT_TRUE(r.is_eventually_consistent());
  EXPECT_EQ(r.ecfd_stable_from(), 400);
}

}  // namespace
}  // namespace ecfd
