// Tests for the Section 4 piggyback-optimized combined Omega + ◇P
// detector (fd/efficient_p.hpp).
#include "fd/efficient_p.hpp"

#include <gtest/gtest.h>

#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::run_fd_scenario;

testutil::Installer installer() {
  return [](ProcessHost& host, ProcessId,
            std::vector<std::shared_ptr<void>>&) {
    auto& fd = host.emplace<fd::EfficientP>();
    return testutil::OracleRefs{&fd, &fd};
  };
}

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(250), msec(50));
}

TEST(EfficientP, IsEventuallyPerfectAndConsistent) {
  auto cfg = base_scenario(5, 1);
  cfg.with_crash(2, msec(700)).with_crash(4, sec(1));
  auto res = run_fd_scenario(cfg, installer(), sec(8));
  EXPECT_TRUE(res.report.is_eventually_perfect());
  EXPECT_TRUE(res.report.is_eventually_consistent());
  EXPECT_EQ(res.report.omega_leader, 0);
}

TEST(EfficientP, SurvivesLeaderCrash) {
  auto cfg = base_scenario(5, 2);
  cfg.with_crash(0, msec(800));
  auto res = run_fd_scenario(cfg, installer(), sec(8));
  EXPECT_TRUE(res.report.is_eventually_perfect());
  EXPECT_TRUE(res.report.omega.holds);
  EXPECT_EQ(res.report.omega_leader, 1);
}

TEST(EfficientP, SteadyStateCostIsExactly2NMinus1) {
  // The Section 4 headline: 2(n-1) messages per period TOTAL, detector
  // included — the leader's list-carrying beat plus the alive inflow.
  const int n = 10;
  auto cfg = base_scenario(n, 3);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  for (ProcessId p = 0; p < n; ++p) sys->host(p).emplace<fd::EfficientP>();
  sys->start();
  // Warm up past the transient multi-leader phase, then measure.
  sys->run_until(sec(1));
  const auto before = sys->network().sent_total();
  sys->run_until(sec(3));
  const auto sent = sys->network().sent_total() - before;
  fd::EfficientP::Config defaults;
  const double periods = static_cast<double>(sec(2)) / defaults.period;
  EXPECT_NEAR(static_cast<double>(sent), periods * 2 * (n - 1),
              periods * 2 * (n - 1) * 0.05);
}

TEST(EfficientP, LeaderFlagFollowsElection) {
  const int n = 4;
  auto cfg = base_scenario(n, 4);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  std::vector<fd::EfficientP*> fds;
  for (ProcessId p = 0; p < n; ++p) {
    fds.push_back(&sys->host(p).emplace<fd::EfficientP>());
  }
  sys->crash_at(0, sec(1));
  sys->start();
  sys->run_until(msec(800));
  EXPECT_TRUE(fds[0]->acting_leader());
  EXPECT_FALSE(fds[1]->acting_leader());
  sys->run_until(sec(3));
  EXPECT_TRUE(fds[1]->acting_leader());
  EXPECT_FALSE(fds[2]->acting_leader());
  EXPECT_TRUE(fds[1]->suspected().contains(0));
}

struct SweepParam {
  std::uint64_t seed;
  int n;
  int crashes;
};

class EfficientPSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EfficientPSweep, EventuallyPerfect) {
  const SweepParam p = GetParam();
  auto cfg = base_scenario(p.n, p.seed);
  for (int i = 0; i < p.crashes; ++i) {
    cfg.with_crash((2 * i + 1) % p.n, msec(400) + i * msec(300));
  }
  auto res = run_fd_scenario(cfg, installer(), sec(10));
  EXPECT_TRUE(res.report.is_eventually_perfect())
      << "seed=" << p.seed << " n=" << p.n << " f=" << p.crashes;
  EXPECT_TRUE(res.report.is_eventually_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EfficientPSweep,
    ::testing::Values(SweepParam{61, 4, 1}, SweepParam{62, 5, 2},
                      SweepParam{63, 6, 2}, SweepParam{64, 7, 3},
                      SweepParam{65, 3, 1}, SweepParam{66, 8, 3}));

}  // namespace
}  // namespace ecfd
