// Tests for the crash flight recorder (obs/flight.hpp): the in-process
// ecfd.postmortem.v1 round-trip, the metrics persisted with it, malformed
// input rejection, and the property the subsystem exists for — a child
// process that dies on SIGSEGV leaves behind a readable image whose
// timeline ends at the moment of death.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeline.hpp"

namespace ecfd::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Postmortem, OrderlyRoundTripRecoversEventsAndMetrics) {
  Recorder rec(256);
  rec.bind_hosts(3);
  rec.meta().source = "socket";
  rec.meta().clock = ClockDomain::kMonotonic;
  rec.meta().wall_epoch_us = 1'700'000'000'000'000;
  rec.ring(1).push(100, EventType::kSend, /*a=*/2);
  rec.ring(1).push(250, EventType::kDeliver, /*a=*/0);
  rec.state_ring(1).push(300, EventType::kSuspect, /*a=*/2);
  rec.system_ring().push(400, EventType::kVerdict, /*a=*/1);

  MetricsRegistry reg;
  reg.add("net.sent.p0", 42);
  reg.set_gauge("fd.suspected", 1);

  const std::string path = temp_path("ecfd_pm_roundtrip.bin");
  FlightRecorder fr;
  std::string error;
  ASSERT_TRUE(fr.open(path, &rec, /*self=*/1, &error)) << error;
  fr.set_metrics(&reg);
  fr.snapshot(/*now=*/500);
  fr.close();

  TimelineDoc doc;
  PostmortemInfo info;
  ASSERT_TRUE(read_postmortem(path, &doc, &info, &error)) << error;
  EXPECT_EQ(info.node, 1);
  EXPECT_EQ(info.signal, 0);  // orderly: no synthetic crash event
  EXPECT_EQ(info.snapshots, 2u);  // open() takes one, snapshot() another
  ASSERT_EQ(doc.events.size(), 4u);
  EXPECT_EQ(doc.meta.source, "socket");
  EXPECT_EQ(doc.meta.clock, ClockDomain::kMonotonic);
  EXPECT_EQ(doc.meta.wall_epoch_us, 1'700'000'000'000'000);

  // Time-sorted, and no synthetic kCrash at the end.
  EXPECT_EQ(doc.events.front().time, 100);
  EXPECT_EQ(doc.events.back().time, 400);
  EXPECT_EQ(doc.events.back().type, EventType::kVerdict);
  bool saw_suspect = false;
  for (const Event& e : doc.events) {
    if (e.type == EventType::kSuspect && e.host == 1 && e.a == 2) {
      saw_suspect = true;
    }
  }
  EXPECT_TRUE(saw_suspect);

  bool saw_counter = false;
  for (const auto& [name, value] : info.counters) {
    if (name == "net.sent.p0" && value == 42) saw_counter = true;
  }
  EXPECT_TRUE(saw_counter);
  bool saw_gauge = false;
  for (const auto& [name, value] : info.gauges) {
    if (name == "fd.suspected" && value == 1) saw_gauge = true;
  }
  EXPECT_TRUE(saw_gauge);
}

TEST(Postmortem, RingOverflowKeepsTheNewestEvents) {
  Recorder rec(/*depth=*/8);
  rec.bind_hosts(1);
  for (int i = 0; i < 100; ++i) {
    rec.ring(0).push(1000 + i, EventType::kSend, 0);
  }
  const std::string path = temp_path("ecfd_pm_overflow.bin");
  FlightRecorder fr;
  std::string error;
  ASSERT_TRUE(fr.open(path, &rec, 0, &error)) << error;
  fr.snapshot(2000);
  fr.close();

  TimelineDoc doc;
  PostmortemInfo info;
  ASSERT_TRUE(read_postmortem(path, &doc, &info, &error)) << error;
  ASSERT_EQ(doc.events.size(), 8u);  // newest 8 survive the wrap
  EXPECT_EQ(doc.events.front().time, 1092);
  EXPECT_EQ(doc.events.back().time, 1099);
  EXPECT_GT(doc.dropped, 0u);
}

TEST(Postmortem, RejectsMalformedInput) {
  TimelineDoc doc;
  PostmortemInfo info;
  std::string error;
  EXPECT_FALSE(read_postmortem(temp_path("ecfd_pm_missing.bin"), &doc, &info,
                               &error));

  const std::string path = temp_path("ecfd_pm_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "definitely not a postmortem image";
  }
  error.clear();
  EXPECT_FALSE(read_postmortem(path, &doc, &info, &error));
  EXPECT_FALSE(error.empty());

  // Valid image, truncated mid-file: must fail cleanly, not crash.
  Recorder rec(64);
  rec.bind_hosts(1);
  rec.ring(0).push(1, EventType::kSend, 0);
  const std::string full = temp_path("ecfd_pm_truncated.bin");
  FlightRecorder fr;
  ASSERT_TRUE(fr.open(full, &rec, 0, &error)) << error;
  fr.snapshot(10);
  fr.close();
  std::ifstream is(full, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  is.close();
  {
    std::ofstream os(full, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  error.clear();
  EXPECT_FALSE(read_postmortem(full, &doc, &info, &error));
  EXPECT_FALSE(error.empty());
}

// The real contract: a SIGSEGV death leaves a readable image. The child
// re-raises from the handler with SA_RESETHAND, so the parent observes the
// original signal in the wait status; the parent then reads the mapping
// the kernel kept alive in the page cache.
TEST(Postmortem, SigsegvChildLeavesTimelineEndingAtTheCrash) {
  const std::string path = temp_path("ecfd_pm_sigsegv.bin");
  std::remove(path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child. No gtest asserts in here — on any failure just _exit(3) so
    // the parent sees a non-signal status and fails the test.
    Recorder rec(256);
    rec.bind_hosts(2);
    rec.ring(0).push(10, EventType::kSend, 1);
    rec.state_ring(0).push(20, EventType::kSuspect, 1);
    MetricsRegistry reg;
    reg.add("net.sent.p1", 7);
    FlightRecorder fr;
    std::string error;
    if (!fr.open(path, &rec, 0, &error)) _exit(3);
    fr.set_metrics(&reg);
    fr.snapshot(25);
    FlightRecorder::install_crash_handler(&fr);
    rec.ring(0).push(30, EventType::kDeliver, 1);  // after the snapshot
    ::raise(SIGSEGV);
    _exit(3);  // unreachable: the reset handler re-raises
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  TimelineDoc doc;
  PostmortemInfo info;
  std::string error;
  ASSERT_TRUE(read_postmortem(path, &doc, &info, &error)) << error;
  EXPECT_EQ(info.node, 0);
  EXPECT_EQ(info.signal, SIGSEGV);
  ASSERT_GE(doc.events.size(), 4u);

  // The deliver pushed AFTER the last cold snapshot is only in the image
  // because the signal handler re-dumped the rings.
  bool saw_post_snapshot_event = false;
  for (const Event& e : doc.events) {
    if (e.type == EventType::kDeliver && e.time == 30) {
      saw_post_snapshot_event = true;
    }
  }
  EXPECT_TRUE(saw_post_snapshot_event);

  // The timeline ends at the synthetic crash marker.
  const Event& last = doc.events.back();
  EXPECT_EQ(last.type, EventType::kCrash);
  EXPECT_EQ(last.host, 0);
  EXPECT_EQ(last.a, SIGSEGV);
  EXPECT_GE(last.time, 25);  // at or after the last env-clock reading
}

}  // namespace
}  // namespace ecfd::obs
