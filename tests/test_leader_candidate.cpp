#include "fd/leader_candidate.hpp"

#include <gtest/gtest.h>

#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::holds_with_margin;
using testutil::run_fd_scenario;

testutil::Installer lc_installer() {
  return [](ProcessHost& host, ProcessId,
            std::vector<std::shared_ptr<void>>&) {
    auto& lc = host.emplace<fd::LeaderCandidate>();
    return testutil::OracleRefs{nullptr, &lc};
  };
}

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(300), msec(60));
}

TEST(LeaderCandidate, ElectsP0WhenAllCorrect) {
  auto res = run_fd_scenario(base_scenario(5, 1), lc_installer(), sec(5));
  EXPECT_TRUE(res.report.omega.holds);
  EXPECT_EQ(res.report.omega_leader, 0);
  EXPECT_TRUE(holds_with_margin(res.report.omega, res.horizon, sec(2)));
}

TEST(LeaderCandidate, FallsThroughCrashedPrefix) {
  auto cfg = base_scenario(5, 2);
  cfg.with_crash(0, msec(500)).with_crash(1, msec(800));
  auto res = run_fd_scenario(cfg, lc_installer(), sec(8));
  EXPECT_TRUE(res.report.omega.holds);
  EXPECT_EQ(res.report.omega_leader, 2);
}

TEST(LeaderCandidate, RecoversFromPreGstMistakes) {
  auto cfg = base_scenario(4, 3);
  cfg.pre_gst_max = msec(200);  // force mistaken suspicion of p0
  cfg.gst = msec(800);
  auto res = run_fd_scenario(cfg, lc_installer(), sec(8));
  EXPECT_TRUE(res.report.omega.holds);
  EXPECT_EQ(res.report.omega_leader, 0)
      << "rollback must restore the lowest-id correct leader";
}

TEST(LeaderCandidate, SteadyStateCostIsLinear) {
  ScenarioConfig cfg = base_scenario(8, 4);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    sys->host(p).emplace<fd::LeaderCandidate>();
  }
  sys->start();
  sys->run_until(sec(3));
  // Only the leader broadcasts: ~ (n-1) messages per period once stable
  // (allow some startup noise from transient self-candidates).
  const auto sent = sys->counters().get("msg.lc.leader.sent");
  fd::LeaderCandidate::Config defaults;
  const double periods = static_cast<double>(sec(3)) / defaults.period;
  EXPECT_LT(static_cast<double>(sent), periods * (cfg.n - 1) * 1.5);
  EXPECT_GT(static_cast<double>(sent), periods * (cfg.n - 1) * 0.8);
}

TEST(LeaderCandidate, OnlyPrefixEverSuspected) {
  ScenarioConfig cfg = base_scenario(5, 5);
  auto sys = make_system(cfg);
  std::vector<fd::LeaderCandidate*> lcs;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    lcs.push_back(&sys->host(p).emplace<fd::LeaderCandidate>());
  }
  sys->crash_at(4, sec(1));  // a crash above everyone's candidate
  sys->start();
  sys->run_until(sec(4));
  // The detector provides leader election only: p4's crash is invisible
  // because p4 was never anyone's candidate. (This is why LeaderCandidate
  // alone is not ◇S-complete, as the header documents.)
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_FALSE(lcs[p]->prefix_suspects().contains(4));
  }
}

struct SweepParam {
  std::uint64_t seed;
  int n;
  int prefix_crashes;
};

class LeaderCandidateSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(LeaderCandidateSweep, OmegaHolds) {
  const SweepParam param = GetParam();
  auto cfg = base_scenario(param.n, param.seed);
  for (int i = 0; i < param.prefix_crashes; ++i) {
    cfg.with_crash(i, msec(300) + i * msec(200));
  }
  auto res = run_fd_scenario(cfg, lc_installer(), sec(10));
  EXPECT_TRUE(res.report.omega.holds) << "seed=" << param.seed;
  EXPECT_EQ(res.report.omega_leader, param.prefix_crashes)
      << "leader must be the first correct process";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LeaderCandidateSweep,
    ::testing::Values(SweepParam{31, 4, 0}, SweepParam{32, 4, 1},
                      SweepParam{33, 5, 2}, SweepParam{34, 6, 3},
                      SweepParam{35, 7, 1}, SweepParam{36, 3, 1}));

}  // namespace
}  // namespace ecfd
