// Partition / heal behaviour: failure detectors are defined for crash
// faults, but a production detector must re-converge after a transient
// partition (which looks like a mass "crash" that un-happens). These
// tests document and verify that recovery.
#include <gtest/gtest.h>

#include "core/c_to_p.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/leader_candidate.hpp"
#include "fd/ring_fd.hpp"
#include "fd/stable_leader.hpp"
#include "net/scenario.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::minority;

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, /*gst=*/0);
}

TEST(Partitions, HeartbeatSuspectsAcrossTheCutAndRecovers) {
  const int n = 6;
  auto sys = make_system(base_scenario(n, 1));
  std::vector<fd::HeartbeatP*> hbs;
  for (ProcessId p = 0; p < n; ++p) {
    hbs.push_back(&sys->host(p).emplace<fd::HeartbeatP>());
  }
  sys->start();
  sys->run_until(msec(500));
  EXPECT_TRUE(hbs[0]->suspected().empty());

  sys->network().partition(minority(n, 2));  // {p0,p1} | {p2..p5}
  sys->run_until(sec(1));
  // Each side suspects the other.
  EXPECT_TRUE(hbs[0]->suspected().contains(3));
  EXPECT_TRUE(hbs[3]->suspected().contains(0));
  EXPECT_FALSE(hbs[0]->suspected().contains(1));

  sys->network().heal();
  sys->run_until(sec(4));
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_TRUE(hbs[p]->suspected().empty())
        << "p" << p << " still suspects " << hbs[p]->suspected().to_string();
  }
}

TEST(Partitions, RingLeaderSplitsAndReunifies) {
  const int n = 6;
  auto sys = make_system(base_scenario(n, 2));
  std::vector<fd::RingFd*> rings;
  for (ProcessId p = 0; p < n; ++p) {
    rings.push_back(&sys->host(p).emplace<fd::RingFd>());
  }
  sys->start();
  sys->run_until(msec(500));
  EXPECT_EQ(rings[4]->trusted(), 0);

  sys->network().partition(minority(n, 2));
  sys->run_until(sec(3));
  // The majority side can no longer reach p0/p1: its ring leader moves.
  EXPECT_EQ(rings[4]->trusted(), 2);
  // The minority side still believes in p0.
  EXPECT_EQ(rings[1]->trusted(), 0);

  sys->network().heal();
  sys->run_until(sec(8));
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_EQ(rings[p]->trusted(), 0) << "p" << p << " after heal";
    EXPECT_TRUE(rings[p]->suspected().empty()) << "p" << p;
  }
}

TEST(Partitions, LeaderCandidateReconvergesAfterHeal) {
  const int n = 5;
  auto sys = make_system(base_scenario(n, 3));
  std::vector<fd::LeaderCandidate*> lcs;
  for (ProcessId p = 0; p < n; ++p) {
    lcs.push_back(&sys->host(p).emplace<fd::LeaderCandidate>());
  }
  sys->start();
  sys->run_until(msec(400));
  sys->network().partition(minority(n, 1));  // isolate p0
  sys->run_until(sec(2));
  for (ProcessId p = 1; p < n; ++p) EXPECT_EQ(lcs[p]->trusted(), 1);

  sys->network().heal();
  sys->run_until(sec(5));
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_EQ(lcs[p]->trusted(), 0) << "lowest-id rule reinstates p0";
  }
}

TEST(Partitions, CToPListRecoversAfterHeal) {
  const int n = 5;
  auto sys = make_system(base_scenario(n, 4));
  std::vector<core::CToP*> ctps;
  for (ProcessId p = 0; p < n; ++p) {
    auto& omega = sys->host(p).emplace<fd::LeaderCandidate>();
    ctps.push_back(&sys->host(p).emplace<core::CToP>(&omega));
  }
  sys->start();
  sys->run_until(msec(500));
  sys->network().partition(minority(n, 2));
  sys->run_until(sec(2));
  // Majority side's acting leader (p2) suspects the minority.
  EXPECT_TRUE(ctps[3]->suspected().contains(0));

  sys->network().heal();
  sys->run_until(sec(6));
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_TRUE(ctps[p]->suspected().empty())
        << "p" << p << ": " << ctps[p]->suspected().to_string();
  }
}

}  // namespace
}  // namespace ecfd
