// Tests for the observability HTTP endpoint (obs/http_export.hpp) and the
// Prometheus exposition writer (MetricsRegistry::write_prometheus): a real
// client socket fetches /metrics.json and /metrics from a running
// MetricsHttpServer and both representations must be valid — the JSON
// parses back through obs/json.hpp with the registered values intact, the
// Prometheus text obeys the 0.0.4 grammar (TYPE lines, _total counters,
// cumulative le buckets). Also the lifecycle contract the old detached
// ecfd_node server violated: stop() joins the thread and releases the
// port, so a second server can bind it immediately.

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "obs/http_export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ecfd::obs {
namespace {

/// One blocking HTTP/1.0 GET against 127.0.0.1:port; returns the full
/// response (headers + body), or "" on connect failure.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    resp.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return resp;
}

std::string body_of(const std::string& resp) {
  const auto pos = resp.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : resp.substr(pos + 4);
}

class MetricsHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reg_.add("net.sent.p0", 42);
    reg_.add("net.recv.p0", 17);
    reg_.set_gauge("fd.suspected", 1);
    Histogram* h = reg_.histogram("kv.client.read_us");
    h->observe(0);
    h->observe(1);
    h->observe(3);    // bucket [2,4)
    h->observe(700);  // bucket [512,1024)

    server_.handle("/metrics", "text/plain; version=0.0.4", [this]() {
      std::ostringstream os;
      reg_.write_prometheus(os);
      return os.str();
    });
    server_.handle("/metrics.json", "application/json", [this]() {
      std::ostringstream os;
      reg_.write_json(os, "test");
      return os.str();
    });
    std::string error;
    ASSERT_TRUE(server_.start(/*port=*/0, &error)) << error;
    ASSERT_GT(server_.port(), 0);
  }

  MetricsRegistry reg_;
  MetricsHttpServer server_;
};

TEST_F(MetricsHttpTest, JsonEndpointServesAParsableRegistry) {
  const std::string resp = http_get(server_.port(), "/metrics.json");
  ASSERT_NE(resp.find("200 OK"), std::string::npos) << resp;
  ASSERT_NE(resp.find("Content-Type: application/json"), std::string::npos);

  std::string error;
  const json::Value doc = json::parse(body_of(resp), &error);
  ASSERT_FALSE(doc.is_null()) << error;
  EXPECT_EQ(doc.at("schema").as_string(), "ecfd.metrics.v1");
  EXPECT_EQ(doc.at("source").as_string(), "test");
  EXPECT_EQ(doc.at("counters").at("net.sent.p0").as_int(), 42);
  EXPECT_EQ(doc.at("gauges").at("fd.suspected").as_int(), 1);
  EXPECT_EQ(
      doc.at("histograms").at("kv.client.read_us").at("count").as_int(), 4);
  EXPECT_EQ(doc.at("histograms").at("kv.client.read_us").at("sum").as_int(),
            704);
}

TEST_F(MetricsHttpTest, PrometheusEndpointObeysTheExpositionGrammar) {
  const std::string resp = http_get(server_.port(), "/metrics");
  ASSERT_NE(resp.find("200 OK"), std::string::npos) << resp;
  const std::string body = body_of(resp);

  // Counters: sanitized name, _total suffix, TYPE line first.
  EXPECT_NE(body.find("# TYPE net_sent_p0_total counter"),
            std::string::npos) << body;
  EXPECT_NE(body.find("net_sent_p0_total 42"), std::string::npos);
  EXPECT_NE(body.find("# TYPE fd_suspected gauge"), std::string::npos);
  EXPECT_NE(body.find("fd_suspected 1"), std::string::npos);

  // Histogram: cumulative le buckets ending in +Inf == count, then
  // _sum/_count. Observations were 0, 1, 3, 700.
  EXPECT_NE(body.find("# TYPE kv_client_read_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("kv_client_read_us_bucket{le=\"0\"} 1"),
            std::string::npos) << body;
  EXPECT_NE(body.find("kv_client_read_us_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(body.find("kv_client_read_us_bucket{le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(body.find("kv_client_read_us_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(body.find("kv_client_read_us_sum 704"), std::string::npos);
  EXPECT_NE(body.find("kv_client_read_us_count 4"), std::string::npos);

  // le bucket counts must be nondecreasing in document order.
  std::int64_t prev = -1;
  std::size_t pos = 0;
  int buckets = 0;
  while ((pos = body.find("kv_client_read_us_bucket", pos)) !=
         std::string::npos) {
    const auto brace = body.find("} ", pos);
    ASSERT_NE(brace, std::string::npos);
    const std::int64_t v = std::stoll(body.substr(brace + 2));
    EXPECT_GE(v, prev);
    prev = v;
    ++buckets;
    pos = brace;
  }
  EXPECT_GE(buckets, 4);
}

TEST_F(MetricsHttpTest, UnknownPathIs404WithTheRouteList) {
  const std::string resp = http_get(server_.port(), "/nope");
  EXPECT_NE(resp.find("404 Not Found"), std::string::npos);
  EXPECT_NE(resp.find("/metrics.json"), std::string::npos);
}

TEST_F(MetricsHttpTest, ValuesAreLiveNotCachedAtStart) {
  reg_.add("net.sent.p0", 8);  // 42 -> 50 after start()
  const std::string resp = http_get(server_.port(), "/metrics");
  EXPECT_NE(body_of(resp).find("net_sent_p0_total 50"), std::string::npos);
}

TEST_F(MetricsHttpTest, StopJoinsAndReleasesThePort) {
  const int port = server_.port();
  server_.stop();
  EXPECT_FALSE(server_.running());
  server_.stop();  // idempotent

  // The old detached-thread server leaked its fd forever; the fix means
  // the port is immediately rebindable.
  MetricsHttpServer second;
  second.handle("/ping", "text/plain", []() { return std::string("pong\n"); });
  std::string error;
  ASSERT_TRUE(second.start(port, &error)) << error;
  EXPECT_EQ(second.port(), port);
  EXPECT_NE(http_get(port, "/ping").find("pong"), std::string::npos);
  second.stop();
}

}  // namespace
}  // namespace ecfd::obs
