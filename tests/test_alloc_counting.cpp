// Allocation-regression suite. Links sim/alloc_counter.cpp (the counting
// operator new/delete), so every heap allocation in this process is
// observable. The properties pinned here:
//
//  1. Steady-state schedule/fire on the Scheduler is allocation-free: the
//     4-ary heap reuses generation-tagged slots and InplaceAction stores
//     every callable inline, so once the slab has grown to the working-set
//     size, scheduling another event never touches the heap.
//  2. Steady-state message traffic through the simulated Network is
//     allocation-free: payload bodies come from the per-type freelist
//     behind Message::make, counter labels are interned once, and the
//     delivery closure fits the queue's inline action.
//  3. A broadcast fan-out allocates exactly ONE payload body regardless of
//     fan-out width (the "single shared body" design intent, enforced).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fd/heartbeat_p.hpp"
#include "net/payload_pool.hpp"
#include "net/scenario.hpp"
#include "obs/recorder.hpp"
#include "runtime/thread_env.hpp"
#include "runtime/timer_wheel.hpp"
#include "sim/alloc_counter.hpp"
#include "sim/scheduler.hpp"

namespace ecfd {
namespace {

TEST(AllocCounting, OverrideIsLinked) {
  ASSERT_TRUE(sim::alloc_counting_active());
  const std::uint64_t before = sim::alloc_count();
  auto* p = new int(7);
  EXPECT_GT(sim::alloc_count(), before);
  delete p;
}

TEST(AllocCounting, SteadyStateSchedulePopIsAllocationFree) {
  sim::Scheduler s;
  long long acc = 0;
  // Warm-up: grow the slot slab and the heap array to working-set size.
  for (int i = 0; i < 2048; ++i) {
    s.schedule_after(i % 97, [&acc] { ++acc; });
  }
  s.run();

  const std::uint64_t before = sim::alloc_count();
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 1024; ++i) {
      s.schedule_after(i % 97, [&acc] { ++acc; });
    }
    s.run();
  }
  EXPECT_EQ(sim::alloc_count(), before)
      << "scheduling fired " << acc << " events but allocated";
}

TEST(AllocCounting, SteadyStateCancelIsAllocationFree) {
  sim::Scheduler s;
  std::vector<sim::EventId> ids;
  ids.reserve(4096);
  for (int i = 0; i < 4096; ++i) ids.push_back(s.schedule_after(i + 1, [] {}));
  for (sim::EventId id : ids) s.cancel(id);
  ids.clear();
  s.run();

  const std::uint64_t before = sim::alloc_count();
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 1024; ++i) ids.push_back(s.schedule_after(i + 1, [] {}));
    for (sim::EventId id : ids) s.cancel(id);
    ids.clear();
  }
  EXPECT_EQ(sim::alloc_count(), before);
}

struct Body {
  int a{0};
  int b{0};
};

TEST(AllocCounting, SteadyStateNetworkTrafficIsAllocationFree) {
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.seed = 5;
  cfg.links = LinkKind::kReliable;
  auto sys = make_system(cfg);
  sys->start();

  auto blast = [&] {
    for (int round = 0; round < 50; ++round) {
      for (ProcessId p = 0; p < cfg.n; ++p) {
        Message m = Message::make<Body>(900, 1, "pool.test", Body{round, p});
        m.src = p;
        for (ProcessId q = 0; q < cfg.n; ++q) {
          if (q == p) continue;
          m.dst = q;
          sys->network().send(m);
        }
      }
      sys->run_for(msec(10));
    }
  };
  blast();  // warm-up: pools, counter slots, heap arrays

  const std::uint64_t before = sim::alloc_count();
  blast();
  EXPECT_EQ(sim::alloc_count(), before);
  EXPECT_GT(sys->network().delivered_total(), 0);
}

TEST(AllocCounting, EventRingPushIsAllocationFree) {
  // The observability hot path: once rings are bound, recording an event
  // is a fetch_add plus atomic stores — never a heap touch, from any type
  // or ring. (Interning is the documented cold-path exception.)
  obs::Recorder rec(1024);
  rec.bind_hosts(4);
  const std::int32_t label = rec.intern("warm");  // cold path, up front

  const std::uint64_t before = sim::alloc_count();
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 1024; ++i) {
      rec.ring(i % 4).push(i, obs::EventType::kSend, i % 4, i, label);
      rec.state_ring(i % 4).push(i, obs::EventType::kSuspect, i % 4);
      rec.system_ring().push(i, obs::EventType::kVerdict, 0, 0, label);
    }
  }
  EXPECT_EQ(sim::alloc_count(), before);
  EXPECT_GT(rec.dropped_total(), 0u);  // rings wrapped; still no allocation
}

// Sink protocol for the recorder steady-state test: registering it makes
// ProcessHost::deliver take the record(kDeliver) path instead of dropping
// the message as unroutable.
struct SinkProto : Protocol {
  explicit SinkProto(Env& env) : Protocol(env, 900) {}
  void on_message(const Message&) override {}
};

TEST(AllocCounting, SteadyStateTrafficWithRecorderIsAllocationFree) {
  // Property 2 with the typed event recorder attached: the record() calls
  // on the send and deliver paths must not reintroduce allocations. Sends
  // go through the host Env (not raw Network::send) so both kSend and
  // kDeliver are actually recorded.
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.seed = 5;
  cfg.links = LinkKind::kReliable;
  auto sys = make_system(cfg);
  obs::Recorder rec(512);
  sys->attach_recorder(&rec);
  for (ProcessId p = 0; p < cfg.n; ++p) sys->host(p).emplace<SinkProto>();
  sys->start();

  auto blast = [&] {
    for (int round = 0; round < 50; ++round) {
      for (ProcessId p = 0; p < cfg.n; ++p) {
        Message m = Message::make<Body>(900, 1, "pool.test", Body{round, p});
        for (ProcessId q = 0; q < cfg.n; ++q) {
          if (q == p) continue;
          sys->host(p).send(q, m);
        }
      }
      sys->run_for(msec(10));
    }
  };
  blast();  // warm-up

  const std::uint64_t before = sim::alloc_count();
  blast();
  EXPECT_EQ(sim::alloc_count(), before);
#if !defined(ECFD_OBS_DISABLED)
  EXPECT_GT(rec.ring(0).pushed(), 0u);
  EXPECT_GT(rec.dropped_total(), 0u);  // depth 512 wrapped under the churn
#endif
}

TEST(AllocCounting, BroadcastUsesOneSharedBody) {
  // One Message::make + n-1 sends must cost exactly one payload-pool
  // acquisition: the body is shared, never copied per destination.
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.seed = 9;
  cfg.links = LinkKind::kReliable;  // bounded delays: warm-up bodies come
                                    // back to the pool inside each run_for
  auto sys = make_system(cfg);
  sys->start();

  // Warm the pool so "fresh vs reused" accounting is exercised both ways.
  for (int i = 0; i < 4; ++i) {
    Message warm = Message::make<Body>(900, 2, "pool.bcast", Body{i, i});
    warm.src = 0;
    warm.dst = 1;
    sys->network().send(warm);
    sys->run_for(msec(10));
  }

  const auto before = payload_pool_thread_stats();
  Message m = Message::make<Body>(900, 2, "pool.bcast", Body{1, 2});
  m.src = 0;
  for (ProcessId q = 1; q < cfg.n; ++q) {
    m.dst = q;
    sys->network().send(m);
  }
  const auto mid = payload_pool_thread_stats();
  EXPECT_EQ((mid.fresh + mid.reused) - (before.fresh + before.reused), 1u)
      << "broadcast fan-out must allocate exactly one shared body";

  m.payload.reset();     // drop the sender's reference
  sys->run_for(sec(1));  // deliver everything; body returns to the pool
  const auto after = payload_pool_thread_stats();
  EXPECT_EQ(after.released - mid.released, 1u);
}

TEST(AllocCounting, TimerWheelChurnIsAllocationFree) {
  // Property 1, ported to the threaded runtime's wheel: once the slab has
  // grown to the working set, schedule/cancel/fire churn never allocates.
  runtime::TimerWheel wheel(0);
  const auto sink = [](std::uint32_t, runtime::TimerWheel::Kind,
                       sim::InplaceAction& fn) { fn(); };
  std::vector<runtime::WheelHandle> handles;
  handles.reserve(4096);
  TimeUs t = 0;
  for (int i = 0; i < 4096; ++i) {
    handles.push_back(wheel.schedule(usec(64 * (1 + i % 100)), 0,
                                     runtime::TimerWheel::Kind::kPost,
                                     sim::InplaceAction([] {})));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) wheel.cancel(handles[i]);
  t = msec(10);
  wheel.advance(t, sink);
  handles.clear();
  ASSERT_EQ(wheel.size(), 0u);

  const std::uint64_t before = sim::alloc_count();
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 1024; ++i) {
      handles.push_back(wheel.schedule(t + usec(64 * (1 + i % 100)), 0,
                                       runtime::TimerWheel::Kind::kPost,
                                       sim::InplaceAction([] {})));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) {
      wheel.cancel(handles[i]);
    }
    t += msec(10);
    wheel.advance(t, sink);
    handles.clear();
  }
  EXPECT_EQ(sim::alloc_count(), before);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(AllocCounting, ShardedRuntimeHeartbeatSteadyStateIsAllocationFree) {
  // The ISSUE 4 acceptance property: heartbeats flowing through the
  // sharded executor — mailbox push/drain, wheel schedule/fire, routing,
  // delivery — allocate nothing once warm. workers=1 keeps all payload
  // and buffer reuse on one thread so the assertion can be exact; the
  // heartbeat messages themselves are payload-less broadcasts.
  runtime::ThreadSystem::Config cfg;
  cfg.n = 4;
  cfg.seed = 21;
  cfg.workers = 1;
  cfg.min_delay = usec(100);
  cfg.max_delay = msec(1);
  runtime::ThreadSystem sys(cfg);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    fd::HeartbeatP::Config hc;
    hc.period = msec(10);
    hc.initial_timeout = msec(80);
    hc.timeout_increment = msec(40);
    sys.host(p).emplace<fd::HeartbeatP>(hc);
  }
  sys.start();
  // Warm-up: grow mailboxes, the worker's drain batch and the timer-wheel
  // slab to their steady-state working set.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));

  // Real threads on a loaded machine can be descheduled past the FD
  // timeout, and the resulting (legitimate) spurious suspicion allocates
  // in the suspect set. The property under test is that the steady state
  // itself is allocation-free, so require one clean measurement window
  // out of a few rather than demanding the OS never preempts us.
  std::uint64_t delta = 0;
  for (int window = 0; window < 4; ++window) {
    const std::uint64_t before = sim::alloc_count();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    delta = sim::alloc_count() - before;
    if (delta == 0) break;
  }
  EXPECT_EQ(delta, 0u)
      << "every steady-state window allocated (last window: " << delta
      << " allocations)";
}

}  // namespace
}  // namespace ecfd
