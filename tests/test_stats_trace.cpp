#include "sim/stats.hpp"
#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace ecfd::sim {
namespace {

TEST(Counters, AddAndGet) {
  Counters c;
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5);
  EXPECT_EQ(c.get("missing"), 0);
}

TEST(Counters, SumPrefix) {
  Counters c;
  c.add("msg.a.sent", 3);
  c.add("msg.a.dropped", 1);
  c.add("msg.b.sent", 7);
  c.add("other", 100);
  EXPECT_EQ(c.sum_prefix("msg."), 11);
  EXPECT_EQ(c.sum_prefix("msg.a."), 4);
  EXPECT_EQ(c.sum_prefix("zzz"), 0);
}

TEST(Counters, ResetClears) {
  Counters c;
  c.add("x");
  c.reset();
  EXPECT_EQ(c.get("x"), 0);
  EXPECT_TRUE(c.all().empty());
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.9), 90.0, 1.0);
}

TEST(Summary, EmptyMeanIsZero) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Summary, AddAfterQueryStillSorted) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Trace, DisabledByDefaultAndRecordsNothing) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.emit(10, 0, "tag", "detail");
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace t;
  t.enable();
  t.emit(10, 2, "fd.suspect", "p3");
  t.emit(20, -1, "sys", "");
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].time, 10);
  EXPECT_EQ(t.events()[0].process, 2);
  EXPECT_EQ(t.events()[0].tag, "fd.suspect");
}

TEST(Trace, ForTagFilters) {
  Trace t;
  t.enable();
  t.emit(1, 0, "a", "");
  t.emit(2, 0, "b", "");
  t.emit(3, 0, "a", "");
  int count = 0;
  t.for_tag("a", [&](const TraceEvent&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(Trace, ToStringFormat) {
  Trace t;
  t.enable();
  t.emit(5, 1, "x", "y");
  EXPECT_EQ(t.to_string(), "[5us] p1 x y\n");
}

}  // namespace
}  // namespace ecfd::sim
