// Unit tests for the online property monitors (src/check/): the verdict
// classification rules, the FD monitor's suffix tracking on synthetic
// snapshot streams, and the consensus monitor's safety/termination logic.
// No simulator involved — the monitors are pure state machines.
#include <gtest/gtest.h>

#include "check/consensus_monitor.hpp"
#include "check/fd_monitor.hpp"
#include "check/verdict.hpp"

namespace ecfd::check {
namespace {

// --- verdict classification ----------------------------------------------

TEST(Verdicts, SatisfiedDemandsStabilizationMargin) {
  Verdict v;
  v.eventual = true;
  v.state = VerdictState::kHolding;
  v.holds_since = sec(8);
  EXPECT_TRUE(satisfied(v, sec(12), sec(4)));   // 8 + 4 <= 12
  EXPECT_FALSE(satisfied(v, sec(11), sec(4)));  // stabilized too late
  v.state = VerdictState::kPending;
  EXPECT_FALSE(satisfied(v, sec(100), sec(1)));
}

TEST(Verdicts, SafetyPropertiesIgnoreMargin) {
  Verdict v;
  v.eventual = false;
  v.state = VerdictState::kHolding;
  v.holds_since = sec(99);  // irrelevant for safety
  EXPECT_TRUE(satisfied(v, sec(1), sec(100)));
  v.state = VerdictState::kViolated;
  EXPECT_FALSE(satisfied(v, sec(100), 0));
}

TEST(Verdicts, FailingFiltersRequiredOnly) {
  Verdict bad;
  bad.property = "x";
  bad.state = VerdictState::kViolated;
  Verdict info = bad;
  info.property = "y";
  info.required = false;
  const auto out = failing({bad, info}, sec(1), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].property, "x");
}

// --- FD monitor on synthetic snapshots -----------------------------------

FdPropertyMonitor::Snapshot snap(int n, TimeUs t) {
  FdPropertyMonitor::Snapshot s;
  s.time = t;
  s.crashed = ProcessSet(n);
  s.suspected.assign(static_cast<std::size_t>(n), ProcessSet(n));
  s.trusted.assign(static_cast<std::size_t>(n), 0);
  return s;
}

FdPropertyMonitor::Config fd_config(int n) {
  FdPropertyMonitor::Config cfg;
  cfg.n = n;
  cfg.correct = ProcessSet::full(n);
  return cfg;
}

Verdict find(const std::vector<Verdict>& all, const std::string& name) {
  for (const Verdict& v : all) {
    if (v.property == name) return v;
  }
  ADD_FAILURE() << "no verdict named " << name;
  return {};
}

TEST(FdMonitor, CompletenessFlagsUnsuspectedCrash) {
  const int n = 3;
  FdPropertyMonitor::Config cfg = fd_config(n);
  cfg.correct.remove(2);
  FdPropertyMonitor mon(cfg);

  auto s = snap(n, msec(10));
  s.crashed.add(2);
  s.suspected[2].reset();  // crashed process has no output
  mon.observe(s);  // p0/p1 do not yet suspect p2 -> violating sample

  auto v = find(mon.verdicts(), "fd.strong_completeness");
  EXPECT_EQ(v.state, VerdictState::kPending);
  EXPECT_NE(v.witness.find("p2"), std::string::npos);

  s.time = msec(20);
  s.suspected[0]->add(2);
  s.suspected[1]->add(2);
  mon.observe(s);
  v = find(mon.verdicts(), "fd.strong_completeness");
  EXPECT_EQ(v.state, VerdictState::kHolding);
  EXPECT_EQ(v.holds_since, msec(20));
  EXPECT_EQ(v.violations, 1);
}

TEST(FdMonitor, WeakAccuracyTracksPerCandidateSuffix) {
  const int n = 3;
  FdPropertyMonitor mon(fd_config(n));

  // Sample 1: everyone suspected by someone -> no candidate.
  auto s = snap(n, msec(10));
  s.suspected[0]->add(1);
  s.suspected[0]->add(2);
  s.suspected[1]->add(0);
  s.suspected[2]->add(0);
  mon.observe(s);
  EXPECT_EQ(find(mon.verdicts(), "fd.eventual_weak_accuracy").state,
            VerdictState::kPending);

  // Sample 2: p2 becomes clean everywhere; p0 still slandered.
  s.time = msec(20);
  s.suspected[0]->remove(2);
  mon.observe(s);
  auto v = find(mon.verdicts(), "fd.eventual_weak_accuracy");
  EXPECT_EQ(v.state, VerdictState::kHolding);
  EXPECT_EQ(v.holds_since, msec(20));  // p2's clean suffix, not p0's

  // Sample 3: p2 relapses -> its suffix resets; p0 now clean.
  s.time = msec(30);
  s.suspected[1]->add(2);
  s.suspected[1]->remove(0);
  s.suspected[2]->remove(0);
  mon.observe(s);
  v = find(mon.verdicts(), "fd.eventual_weak_accuracy");
  EXPECT_EQ(v.state, VerdictState::kHolding);
  EXPECT_EQ(v.holds_since, msec(30));  // best candidate is now p0
}

TEST(FdMonitor, LeaderAgreementCatchesSynchronizedFlapping) {
  const int n = 3;
  FdPropertyMonitor mon(fd_config(n));

  // Every process flaps in lockstep: agreement holds instantaneously at
  // every sample, but the common leader keeps changing.
  for (int i = 0; i < 6; ++i) {
    auto s = snap(n, msec(10 * (i + 1)));
    const ProcessId leader = i % n;
    for (int q = 0; q < n; ++q) s.trusted[static_cast<std::size_t>(q)] = leader;
    mon.observe(s);
  }
  auto v = find(mon.verdicts(), "fd.leader_agreement");
  // Every other sample flags a change (the anchor resets after each), so
  // the property never accumulates a stable suffix.
  EXPECT_EQ(v.state, VerdictState::kPending);
  EXPECT_GE(v.violations, 3);
  EXPECT_NE(v.witness.find("changed"), std::string::npos);
  EXPECT_FALSE(satisfied(v, msec(60), msec(10)));
}

TEST(FdMonitor, CouplingFlagsTrustedInSuspected) {
  const int n = 3;
  FdPropertyMonitor mon(fd_config(n));
  auto s = snap(n, msec(10));
  s.suspected[1]->add(0);  // p1 trusts p0 (default) AND suspects p0
  mon.observe(s);
  auto v = find(mon.verdicts(), "fd.coupling");
  EXPECT_EQ(v.state, VerdictState::kPending);
  EXPECT_NE(v.witness.find("p1"), std::string::npos);
}

// --- consensus monitor ----------------------------------------------------

ConsensusMonitor::Config cm_config(int n, TimeUs deadline) {
  ConsensusMonitor::Config cfg;
  cfg.n = n;
  cfg.correct = ProcessSet::full(n);
  cfg.deadline = deadline;
  return cfg;
}

TEST(ConsensusMonitorTest, AgreementViolationIsFinal) {
  ConsensusMonitor mon(cm_config(3, sec(10)));
  mon.note_proposal(0, 100, 0);
  mon.note_proposal(1, 101, 0);
  mon.note_decision(0, 100, 1, msec(5));
  mon.note_decision(1, 101, 1, msec(6));
  auto v = find(mon.verdicts(msec(7)), "consensus.uniform_agreement");
  EXPECT_EQ(v.state, VerdictState::kViolated);
  EXPECT_EQ(v.violated_at, msec(6));
  EXPECT_FALSE(v.witness.empty());
}

TEST(ConsensusMonitorTest, ValidityRequiresAProposedValue) {
  ConsensusMonitor mon(cm_config(2, sec(10)));
  mon.note_proposal(0, 100, 0);
  mon.note_proposal(1, 101, 0);
  mon.note_decision(0, 999, 1, msec(5));
  EXPECT_EQ(find(mon.verdicts(msec(6)), "consensus.validity").state,
            VerdictState::kViolated);
}

TEST(ConsensusMonitorTest, IntegrityFlagsSecondDecision) {
  ConsensusMonitor mon(cm_config(2, sec(10)));
  mon.note_proposal(0, 100, 0);
  mon.note_decision(0, 100, 1, msec(5));
  EXPECT_EQ(find(mon.verdicts(msec(6)), "consensus.uniform_integrity").state,
            VerdictState::kHolding);
  mon.note_decision(0, 100, 2, msec(7));  // same value — still a violation
  auto v = find(mon.verdicts(msec(8)), "consensus.uniform_integrity");
  EXPECT_EQ(v.state, VerdictState::kViolated);
  EXPECT_NE(v.witness.find("p0"), std::string::npos);
}

TEST(ConsensusMonitorTest, TerminationPendingThenHoldingThenDeadline) {
  ConsensusMonitor mon(cm_config(2, sec(10)));
  mon.note_proposal(0, 100, 0);
  mon.note_proposal(1, 100, 0);
  EXPECT_EQ(find(mon.verdicts(sec(1)), "consensus.termination").state,
            VerdictState::kPending);
  mon.note_decision(0, 100, 1, sec(2));
  mon.note_decision(1, 100, 1, sec(3));
  auto v = find(mon.verdicts(sec(4)), "consensus.termination");
  EXPECT_EQ(v.state, VerdictState::kHolding);
  EXPECT_EQ(v.holds_since, sec(3));  // the last correct decision
}

TEST(ConsensusMonitorTest, TerminationViolatedAtDeadline) {
  ConsensusMonitor mon(cm_config(2, sec(10)));
  mon.note_proposal(0, 100, 0);
  mon.note_decision(0, 100, 1, sec(2));  // p1 never decides
  EXPECT_EQ(find(mon.verdicts(sec(9)), "consensus.termination").state,
            VerdictState::kPending);
  auto v = find(mon.verdicts(sec(10)), "consensus.termination");
  EXPECT_EQ(v.state, VerdictState::kViolated);
  EXPECT_NE(v.witness.find("p1"), std::string::npos);
}

TEST(ConsensusMonitorTest, FaultyDeciderCountsForUniformAgreement) {
  // "Uniform": even a process outside the correct set must not disagree.
  ConsensusMonitor::Config cfg = cm_config(3, sec(10));
  cfg.correct.remove(2);
  ConsensusMonitor mon(cfg);
  mon.note_proposal(0, 100, 0);
  mon.note_proposal(2, 102, 0);
  mon.note_decision(0, 100, 1, msec(5));
  mon.note_decision(2, 102, 1, msec(6));  // faulty process disagrees
  EXPECT_EQ(find(mon.verdicts(msec(7)), "consensus.uniform_agreement").state,
            VerdictState::kViolated);
}

}  // namespace
}  // namespace ecfd::check
