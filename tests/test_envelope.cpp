// Fuzz/property suite for the wire batch envelope (src/wire/envelope.*):
// every mutation of a valid envelope — truncation at every byte, a bit
// flip in every byte, count and length lies, splits across datagram
// boundaries — must be REJECTED, never crash, and never mis-deliver.
// Deterministic: fixed seeds, exhaustive loops over small inputs.
#include "wire/envelope.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/protocol_ids.hpp"
#include "wire/codec.hpp"

namespace ecfd::wire {
namespace {

std::vector<std::uint8_t> frame_of(std::int64_t v) {
  std::vector<std::uint8_t> f;
  std::string error;
  Message m = Message::make<std::int64_t>(protocol_ids::kTesting, 1, "t.env", v);
  m.src = 0;
  m.dst = 1;
  EXPECT_TRUE(encode_message(m, &f, &error)) << error;
  return f;
}

std::vector<std::vector<std::uint8_t>> sample_frames(int k) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < k; ++i) frames.push_back(frame_of(1000 + i));
  return frames;
}

std::vector<std::uint8_t> sample_envelope(int k) {
  std::vector<std::uint8_t> env;
  std::string error;
  EXPECT_TRUE(encode_envelope(sample_frames(k), &env, &error)) << error;
  return env;
}

TEST(Envelope, RoundTripsEveryFrameIntact) {
  for (int k : {1, 2, 3, 7, 64}) {
    const auto frames = sample_frames(k);
    std::vector<std::uint8_t> env;
    std::string error;
    ASSERT_TRUE(encode_envelope(frames, &env, &error)) << error;
    ASSERT_TRUE(is_envelope(env.data(), env.size()));

    const auto views = decode_envelope(env.data(), env.size(), &error);
    ASSERT_TRUE(views.has_value()) << error;
    ASSERT_EQ(views->size(), static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      const auto m = decode_message((*views)[static_cast<std::size_t>(i)].data,
                                    (*views)[static_cast<std::size_t>(i)].len);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(m->as<std::int64_t>(), 1000 + i);
    }
  }
}

TEST(Envelope, MagicIsDisjointFromSingleFrameMagic) {
  // The receive path dispatches on the first two bytes; a single frame
  // must never look like an envelope and vice versa.
  const auto frame = frame_of(7);
  const auto env = sample_envelope(2);
  EXPECT_FALSE(is_envelope(frame.data(), frame.size()));
  EXPECT_TRUE(is_envelope(env.data(), env.size()));
  EXPECT_FALSE(decode_message(env.data(), env.size()).has_value());
}

TEST(Envelope, RejectsEmptyAndOversizedBatches) {
  std::vector<std::uint8_t> out;
  std::string error;
  EXPECT_FALSE(encode_envelope({}, &out, &error));

  std::vector<std::vector<std::uint8_t>> too_many;
  for (std::size_t i = 0; i <= kMaxFramesPerEnvelope; ++i) {
    too_many.push_back(frame_of(static_cast<std::int64_t>(i)));
  }
  EXPECT_FALSE(encode_envelope(too_many, &out, &error));

  // A batch whose bytes exceed kMaxFrameBytes must refuse to pack (the
  // coalescer degrades to singles instead of emitting an unsendable blob).
  std::vector<std::vector<std::uint8_t>> too_big;
  std::vector<std::uint8_t> fat(kMaxFrameBytes / 2, 0xAB);
  too_big.push_back(fat);
  too_big.push_back(fat);
  too_big.push_back(fat);
  EXPECT_FALSE(encode_envelope(too_big, &out, &error));
}

TEST(EnvelopeFuzz, TruncationAtEveryByteRejects) {
  const auto env = sample_envelope(5);
  for (std::size_t len = 0; len < env.size(); ++len) {
    const auto views = decode_envelope(env.data(), len);
    EXPECT_FALSE(views.has_value()) << "accepted truncation to " << len;
  }
}

TEST(EnvelopeFuzz, BitFlipInEveryByteRejectsOrDropsOnlyInnerFrames) {
  // The envelope CRC catches framing corruption; a flip inside an inner
  // frame's bytes may still decode as a valid envelope (framing intact)
  // but the inner frame's own CRC must then reject it in decode_message.
  // Either way: no crash, and no frame decodes to a wrong payload.
  const auto env = sample_envelope(3);
  for (std::size_t i = 0; i < env.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = env;
      bad[i] ^= static_cast<std::uint8_t>(1u << bit);
      const auto views = decode_envelope(bad.data(), bad.size());
      if (!views.has_value()) continue;  // rejected at the framing layer
      for (const auto& v : *views) {
        const auto m = decode_message(v.data, v.len);
        if (!m.has_value()) continue;  // rejected at the frame layer
        const std::int64_t payload = m->as<std::int64_t>();
        EXPECT_TRUE(payload >= 1000 && payload <= 1002)
            << "byte " << i << " bit " << bit
            << " delivered corrupted payload " << payload;
      }
    }
  }
}

TEST(EnvelopeFuzz, CountLiesReject) {
  auto env = sample_envelope(4);
  // count lives at offset 4 (magic u16, version u8, flags u8, count u16).
  for (std::uint32_t lie : {0u, 1u, 3u, 5u, 255u, 65535u}) {
    auto bad = env;
    bad[4] = static_cast<std::uint8_t>(lie & 0xFF);
    bad[5] = static_cast<std::uint8_t>(lie >> 8);
    EXPECT_FALSE(decode_envelope(bad.data(), bad.size()).has_value())
        << "accepted count lie " << lie;
  }
}

TEST(EnvelopeFuzz, LengthLiesReject) {
  const auto env = sample_envelope(3);
  // The first inner length prefix sits right after the 8-byte header.
  for (std::uint32_t lie :
       {0u, 1u, 1u << 16, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    auto bad = env;
    bad[8] = static_cast<std::uint8_t>(lie & 0xFF);
    bad[9] = static_cast<std::uint8_t>((lie >> 8) & 0xFF);
    bad[10] = static_cast<std::uint8_t>((lie >> 16) & 0xFF);
    bad[11] = static_cast<std::uint8_t>(lie >> 24);
    EXPECT_FALSE(decode_envelope(bad.data(), bad.size()).has_value())
        << "accepted length lie " << lie;
  }
}

TEST(EnvelopeFuzz, SplitAcrossTwoDatagramsRejectsBothHalves) {
  // UDP never fragments an envelope for us, but a buggy sender might; each
  // half alone must be rejected (the head is truncated, the tail has no
  // magic), and gluing the halves in the WRONG order must be rejected too.
  const auto env = sample_envelope(6);
  for (std::size_t cut : {std::size_t{3}, std::size_t{8}, env.size() / 2,
                          env.size() - 2}) {
    std::vector<std::uint8_t> head(env.begin(),
                                   env.begin() + static_cast<std::ptrdiff_t>(cut));
    std::vector<std::uint8_t> tail(env.begin() + static_cast<std::ptrdiff_t>(cut),
                                   env.end());
    EXPECT_FALSE(decode_envelope(head.data(), head.size()).has_value());
    EXPECT_FALSE(decode_envelope(tail.data(), tail.size()).has_value());
    std::vector<std::uint8_t> swapped = tail;
    swapped.insert(swapped.end(), head.begin(), head.end());
    EXPECT_FALSE(decode_envelope(swapped.data(), swapped.size()).has_value());
  }
}

TEST(EnvelopeFuzz, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(20260808);
  std::vector<std::uint8_t> buf;
  for (int round = 0; round < 2000; ++round) {
    buf.resize(rng() % 512);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    // Bias some rounds toward the magic so the parser gets past dispatch.
    if (round % 3 == 0 && buf.size() >= 2) {
      buf[0] = 0xBA;
      buf[1] = 0xEC;
    }
    const auto views = decode_envelope(buf.data(), buf.size());
    if (views.has_value()) {
      for (const auto& v : *views) decode_message(v.data, v.len);
    }
  }
}

TEST(EnvelopeFuzz, NestedEnvelopeFramesAreRejectedByInnerDecode) {
  // An envelope whose "inner frame" is itself an envelope passes the outer
  // framing (lengths and CRC are consistent) but must fail decode_message,
  // so nesting can never smuggle frames past the depth-one design.
  const auto inner_env = sample_envelope(2);
  std::vector<std::uint8_t> outer;
  std::string error;
  ASSERT_TRUE(encode_envelope({inner_env}, &outer, &error)) << error;
  const auto views = decode_envelope(outer.data(), outer.size(), &error);
  ASSERT_TRUE(views.has_value()) << error;
  ASSERT_EQ(views->size(), 1u);
  EXPECT_FALSE(decode_message((*views)[0].data, (*views)[0].len).has_value());
}

}  // namespace
}  // namespace ecfd::wire
