// Unit tests for the Chen-style QoS-adaptive timeout source
// (fd/adaptive_timeout.hpp) and its integration into the heartbeat ◇P:
// warm-up behavior, steady-state convergence, re-convergence after a
// step change in the arrival process, no suspicion churn while jitter
// stays inside the margin — and, in the simulator, eventual strong
// accuracy under the WAN/geo profile with the adaptive source installed.
#include <gtest/gtest.h>

#include <string>

#include "check/fuzz.hpp"
#include "check/sim_monitor.hpp"
#include "fd/adaptive_timeout.hpp"
#include "fd/heartbeat_p.hpp"
#include "net/link.hpp"
#include "net/scenario.hpp"
#include "obs/metrics.hpp"

namespace ecfd::fd {
namespace {

ArrivalPredictor::Config small_cfg() {
  ArrivalPredictor::Config c;
  c.window = 4;
  c.alpha = msec(5);
  c.alpha_increment = msec(2);
  c.max_alpha = msec(11);
  c.fallback_timeout = msec(50);
  return c;
}

// --- warm-up --------------------------------------------------------------

TEST(ArrivalPredictor, FallsBackBeforeWarmUp) {
  ArrivalPredictor p(small_cfg());
  EXPECT_FALSE(p.warmed_up());
  EXPECT_EQ(p.predicted_next(), kTimeNever);
  EXPECT_EQ(p.mean_interval(), 0);
  EXPECT_EQ(p.deadline(msec(100)), msec(150)) << "ref + fallback";

  p.observe(msec(10));
  EXPECT_FALSE(p.warmed_up()) << "one arrival gives no interval yet";
  EXPECT_EQ(p.deadline(msec(10)), msec(60));

  p.observe(msec(110));
  EXPECT_TRUE(p.warmed_up());
}

// --- steady state ---------------------------------------------------------

TEST(ArrivalPredictor, ConvergesOnAPeriodicArrivalProcess) {
  ArrivalPredictor p(small_cfg());
  TimeUs t = 0;
  for (int i = 0; i < 20; ++i) {
    p.observe(t);
    t += msec(100);
  }
  EXPECT_EQ(p.mean_interval(), msec(100));
  EXPECT_EQ(p.predicted_next(), p.last_arrival() + msec(100));
  EXPECT_EQ(p.deadline(0), p.predicted_next() + msec(5));
  EXPECT_EQ(p.stats().arrivals, 20);
  // Once warmed, every further arrival was predicted — and perfectly.
  EXPECT_EQ(p.stats().predictions, 18);
  EXPECT_EQ(p.stats().abs_err_max, 0);
  EXPECT_EQ(p.err_bucket(0), 18) << "zero-error arrivals land in bucket 0";
}

TEST(ArrivalPredictor, ReconvergesAfterAStepChange) {
  ArrivalPredictor p(small_cfg());
  TimeUs t = 0;
  for (int i = 0; i < 10; ++i) {
    p.observe(t);
    t += msec(100);
  }
  EXPECT_EQ(p.mean_interval(), msec(100));
  // The link degrades: arrivals now come every 200 ms. After `window`
  // samples the old regime has aged out of the ring buffer entirely.
  for (int i = 0; i < 5; ++i) {
    p.observe(t);
    t += msec(200);
  }
  EXPECT_EQ(p.mean_interval(), msec(200));
  EXPECT_GT(p.stats().abs_err_max, 0) << "the transition was mispredicted";
}

// --- margin adaptation ----------------------------------------------------

TEST(ArrivalPredictor, MistakesWidenAlphaUpToTheCeiling) {
  ArrivalPredictor p(small_cfg());
  EXPECT_EQ(p.alpha(), msec(5));
  p.note_mistake();
  EXPECT_EQ(p.alpha(), msec(7));
  p.note_mistake();
  p.note_mistake();
  EXPECT_EQ(p.alpha(), msec(11));
  p.note_mistake();
  EXPECT_EQ(p.alpha(), msec(11)) << "capped at max_alpha";
  EXPECT_EQ(p.stats().mistakes, 4);
}

TEST(ArrivalPredictor, FrozenMarginNeverWidens) {
  ArrivalPredictor::Config c = small_cfg();
  c.widen_on_mistake = false;  // the kFrozenMargin mutation hook
  ArrivalPredictor p(c);
  p.note_mistake();
  p.note_mistake();
  EXPECT_EQ(p.alpha(), msec(5));
  EXPECT_EQ(p.stats().mistakes, 2) << "mistakes still counted";
}

TEST(ArrivalPredictor, NoChurnWhileJitterStaysInsideTheMargin) {
  // Arrivals at 100 ms +- 2 ms with alpha = 5 ms: the windowed mean stays
  // within 2 ms of the true period, so every prediction is within 4 ms of
  // the actual arrival — inside the margin. The deadline computed after
  // each arrival must then cover the next one, so a detector driven by
  // this predictor never suspects (no churn, no mistakes).
  ArrivalPredictor p(small_cfg());
  const DurUs jitter[] = {0,        msec(1),  -msec(2), msec(2),
                          -msec(1), msec(1),  -msec(2), msec(2),
                          -msec(1), msec(2),  -msec(2), 0};
  TimeUs t = 0;
  TimeUs prev_deadline = kTimeNever;
  int covered = 0;
  int checked = 0;
  for (int i = 0; i < 12; ++i) {
    const TimeUs arrival = t + jitter[i];
    if (p.warmed_up()) {
      ++checked;
      if (arrival <= prev_deadline) ++covered;
    }
    p.observe(arrival);
    prev_deadline = p.deadline(arrival);
    t += msec(100);
  }
  EXPECT_GT(checked, 0);
  EXPECT_EQ(covered, checked) << "an arrival overshot the deadline";
  EXPECT_EQ(p.stats().mistakes, 0);
}

// --- clock-skew robustness ------------------------------------------------

TEST(ArrivalPredictor, ToleratesABackwardsSteppedClock) {
  // A skew-stepped local clock can observe time running backwards between
  // two arrivals; the predictor must clamp the interval, not corrupt its
  // window with a negative sample.
  ArrivalPredictor p(small_cfg());
  p.observe(msec(100));
  p.observe(msec(60));  // clock stepped back 40 ms
  p.observe(msec(160));
  EXPECT_GE(p.mean_interval(), 0);
  EXPECT_NE(p.predicted_next(), kTimeNever);
}

// --- ◇P integration -------------------------------------------------------

/// The kFrozenMargin catching scenario with the mutation hook OFF: the
/// same adaptive ◇P, same tiny initial margin, same jittery directed
/// link — but the margin may widen, so after finitely many mistakes the
/// observer stops suspecting its noisy peer and eventual strong accuracy
/// holds. This is the healthy half of the mutation pair.
TEST(AdaptiveHeartbeat, WideningMarginRestoresStrongAccuracy) {
  ScenarioConfig sc;
  sc.n = 5;
  sc.seed = 7;
  sc.links = LinkKind::kReliable;
  auto sys = make_system(sc);
  sys->network().set_link(1, 0,
                          std::make_unique<ReliableLink>(msec(1), msec(60)));

  check::SimMonitor::Config mc;
  mc.check_suspect = true;
  mc.check_leader = false;
  mc.require_strong_accuracy = true;
  check::SimMonitor monitor(mc);
  monitor.install(*sys, ProcessSet::full(5), sec(10));
  for (ProcessId p = 0; p < 5; ++p) {
    HeartbeatP::Config hbc;
    hbc.adaptive = true;
    hbc.predictor.alpha = msec(6);
    auto& f = sys->host(p).emplace<HeartbeatP>(hbc);
    monitor.attach_fd(p, &f, nullptr);
  }
  monitor.start();
  sys->start();
  sys->run_until(sec(10));
  const auto violations = monitor.violations(sys->now(), sec(2));
  EXPECT_TRUE(violations.empty())
      << violations.front().property << ": " << violations.front().witness;
}

TEST(AdaptiveHeartbeat, StrongAccuracyHoldsUnderTheGeoProfile) {
  // The acceptance sim case: WAN latency matrix, adaptive timeout source,
  // and the monitor required to prove eventual *strong* accuracy (◇P).
  for (const std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    check::FuzzCaseConfig cfg;
    cfg.seed = seed;
    cfg.profile = check::FuzzProfile::kGeo;
    cfg.fd = consensus::FdStack::kHeartbeatAdaptive;
    cfg.require_strong_accuracy = true;
    const check::FuzzOutcome out = check::run_fuzz_case(cfg);
    EXPECT_TRUE(out.ok) << "seed " << seed << ": "
                        << (out.violations.empty()
                                ? ""
                                : out.violations.front().property);
  }
}

// --- obs export -----------------------------------------------------------

TEST(AdaptiveHeartbeat, ExportsQosMetricsPerPeer) {
  ScenarioConfig sc;
  sc.n = 3;
  sc.seed = 4;
  sc.links = LinkKind::kReliable;
  auto sys = make_system(sc);
  HeartbeatP::Config hbc;
  hbc.adaptive = true;
  std::vector<HeartbeatP*> fds;
  for (ProcessId p = 0; p < 3; ++p) {
    fds.push_back(&sys->host(p).emplace<HeartbeatP>(hbc));
  }
  sys->start();
  sys->run_until(sec(2));

  obs::MetricsRegistry reg;
  fds[0]->export_adaptive_metrics(reg, "fd.adaptive");
  EXPECT_GT(reg.get("fd.adaptive.p1.arrivals"), 0);
  EXPECT_GT(reg.get("fd.adaptive.p2.arrivals"), 0);
  EXPECT_EQ(reg.get("fd.adaptive.p1.arrivals"),
            fds[0]->predictor(1)->stats().arrivals);
  EXPECT_EQ(reg.get("fd.adaptive.p1.mistakes"),
            fds[0]->predictor(1)->stats().mistakes);
  const obs::Histogram* h = reg.histogram("fd.adaptive.p1.predict_err_us");
  EXPECT_EQ(h->count(), fds[0]->predictor(1)->stats().predictions);
  EXPECT_EQ(reg.gauge_value("fd.adaptive.p1.alpha_us"),
            fds[0]->predictor(1)->alpha());

  // A static-schedule instance exports nothing.
  ScenarioConfig sc2 = sc;
  auto sys2 = make_system(sc2);
  auto& stat = sys2->host(0).emplace<HeartbeatP>();
  obs::MetricsRegistry reg2;
  stat.export_adaptive_metrics(reg2, "fd.adaptive");
  EXPECT_EQ(stat.predictor(1), nullptr);
  EXPECT_EQ(reg2.get("fd.adaptive.p1.arrivals"), 0);
}

}  // namespace
}  // namespace ecfd::fd
