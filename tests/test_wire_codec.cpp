// Wire-format tests: round-trip encode/decode of every message type the
// protocols in net/protocol_ids.hpp send, plus a deterministic corrupt-frame
// fuzz (truncation, bit flips, bad version/magic) pinning the codec's
// reject-don't-crash contract.
#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "consensus/bodies.hpp"
#include "fd/ring_fd.hpp"
#include "kv/command.hpp"
#include "net/process_set.hpp"
#include "net/protocol_ids.hpp"
#include "sim/rng.hpp"
#include "wire/crc32.hpp"

namespace ecfd::wire {
namespace {

using broadcast::RbEnvelope;

Message base(ProtocolId protocol, int type, const char* label) {
  Message m = Message::make_empty(protocol, type, label);
  m.src = 1;
  m.dst = 2;
  return m;
}

std::vector<std::uint8_t> encode_ok(const Message& m) {
  std::vector<std::uint8_t> frame;
  std::string error;
  EXPECT_TRUE(encode_message(m, &frame, &error)) << error;
  return frame;
}

Message roundtrip(const Message& m) {
  std::string error;
  auto decoded = decode_message(encode_ok(m), &error);
  EXPECT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->src, m.src);
  EXPECT_EQ(decoded->dst, m.dst);
  EXPECT_EQ(decoded->protocol, m.protocol);
  EXPECT_EQ(decoded->type, m.type);
  EXPECT_STREQ(decoded->label, m.label);
  return *decoded;
}

ProcessSet sample_set() {
  ProcessSet s(7);
  s.add(0);
  s.add(3);
  s.add(6);
  return s;
}

TEST(WireCodec, EmptyBodies) {
  // heartbeat_p alive, heartbeat_counter beat, leader_candidate beat,
  // c_to_p / efficient_p I-AM-ALIVE: all payload-less.
  for (const auto& [proto, label] :
       std::vector<std::pair<ProtocolId, const char*>>{
           {protocol_ids::kHeartbeatP, "hb_p.alive"},
           {protocol_ids::kHeartbeatCounter, "hbc.beat"},
           {protocol_ids::kLeaderCandidate, "lc.leader"},
           {protocol_ids::kCToP, "ctp.alive"},
           {protocol_ids::kEfficientP, "effp.alive"}}) {
    const Message out = roundtrip(base(proto, 1, label));
    EXPECT_FALSE(out.has_payload());
  }
}

TEST(WireCodec, ProcessSetBodies) {
  // c_to_p list, efficient_p leader list, w_to_s suspects.
  for (const auto& [proto, type, label] :
       std::vector<std::tuple<ProtocolId, int, const char*>>{
           {protocol_ids::kCToP, 2, "ctp.list"},
           {protocol_ids::kEfficientP, 1, "effp.leader"},
           {protocol_ids::kWToS, 1, "wts.suspects"}}) {
    Message m = base(proto, type, label);
    m = Message::make(proto, type, label, sample_set());
    m.src = 0;
    m.dst = 1;
    const Message out = roundtrip(m);
    EXPECT_EQ(out.as<ProcessSet>(), sample_set());
  }

  // Degenerate sets survive too.
  Message empty = Message::make(protocol_ids::kWToS, 1, "wts.suspects",
                                ProcessSet(5));
  EXPECT_EQ(roundtrip(empty).as<ProcessSet>(), ProcessSet(5));
  Message full = Message::make(protocol_ids::kWToS, 1, "wts.suspects",
                               ProcessSet::full(64));
  EXPECT_EQ(roundtrip(full).as<ProcessSet>(), ProcessSet::full(64));
}

TEST(WireCodec, U64VectorBodies) {
  // stable_leader ok/accuse counter vectors, omega_from_s count rows.
  const std::vector<std::uint64_t> counters{0, 41, 0xFFFFFFFFFFFFFFFFull, 7};
  for (const auto& [proto, type, label] :
       std::vector<std::tuple<ProtocolId, int, const char*>>{
           {protocol_ids::kStableLeader, 1, "sl.ok"},
           {protocol_ids::kStableLeader, 2, "sl.accuse"},
           {protocol_ids::kOmegaFromS, 1, "ofs.counts"}}) {
    const Message out =
        roundtrip(Message::make(proto, type, label, counters));
    EXPECT_EQ(out.as<std::vector<std::uint64_t>>(), counters);
  }
}

TEST(WireCodec, RingBodies) {
  fd::RingFd::Body body;
  body.seq = {9, 8, 7, 6, 5};
  body.susp = ProcessSet(5);
  body.susp.add(2);
  for (const auto& [type, label] :
       std::vector<std::pair<int, const char*>>{{1, "ring.query"},
                                                {2, "ring.reply"}}) {
    const Message out = roundtrip(
        Message::make(protocol_ids::kRingFd, type, label, body));
    const auto& b = out.as<fd::RingFd::Body>();
    EXPECT_EQ(b.seq, body.seq);
    EXPECT_EQ(b.susp, body.susp);
  }
}

TEST(WireCodec, ConsensusBodies) {
  // Every body shape of consensus_c (ids 1..7) and chandra_toueg.
  const Message est = roundtrip(Message::make(
      protocol_ids::kConsensusC, 2, "cons_c.estimate",
      consensus::EstimateBody{4, -123456789012345ll, 3}));
  EXPECT_EQ(est.as<consensus::EstimateBody>().round, 4);
  EXPECT_EQ(est.as<consensus::EstimateBody>().value, -123456789012345ll);
  EXPECT_EQ(est.as<consensus::EstimateBody>().ts, 3);

  const Message prop = roundtrip(Message::make(
      protocol_ids::kConsensusCT, 2, "ct.propose",
      consensus::ProposeBody{2, 99}));
  EXPECT_EQ(prop.as<consensus::ProposeBody>().round, 2);
  EXPECT_EQ(prop.as<consensus::ProposeBody>().value, 99);

  for (const auto& [type, label] : std::vector<std::pair<int, const char*>>{
           {1, "cons_c.coord"},
           {3, "cons_c.null_est"},
           {5, "cons_c.null_prop"},
           {6, "cons_c.ack"},
           {7, "cons_c.nack"}}) {
    const Message out = roundtrip(Message::make(
        protocol_ids::kConsensusC, type, label, consensus::RoundOnly{17}));
    EXPECT_EQ(out.as<consensus::RoundOnly>().round, 17);
  }
}

TEST(WireCodec, RbEnvelopeWithNestedDecide) {
  // The rb.relay frame: an envelope carrying a consensus decision — the
  // message that actually terminates a run.
  RbEnvelope env;
  env.origin = 3;
  env.seq = 12;
  env.tag = 1;
  auto body = std::make_shared<const consensus::DecideBody>(
      consensus::DecideBody{5, 4242});
  env.body_type = &typeid(consensus::DecideBody);
  env.body = body;

  const Message out = roundtrip(Message::make(
      protocol_ids::kReliableBroadcast, 1, "rb.relay", env));
  const auto& e = out.as<RbEnvelope>();
  EXPECT_EQ(e.origin, 3);
  EXPECT_EQ(e.seq, 12u);
  EXPECT_EQ(e.tag, 1);
  EXPECT_EQ(e.as<consensus::DecideBody>().round, 5);
  EXPECT_EQ(e.as<consensus::DecideBody>().value, 4242);
}

TEST(WireCodec, RbEnvelopeWithScalarAndEmptyBody) {
  RbEnvelope env;
  env.origin = 0;
  env.seq = 1;
  env.tag = 7;
  auto body = std::make_shared<const std::int64_t>(31337);
  env.body_type = &typeid(std::int64_t);
  env.body = body;
  const Message out = roundtrip(Message::make(
      protocol_ids::kReliableBroadcast, 1, "rb.relay", env));
  EXPECT_EQ(out.as<RbEnvelope>().as<std::int64_t>(), 31337);

  RbEnvelope bare;
  bare.origin = 2;
  bare.seq = 9;
  bare.tag = 0;
  const Message out2 = roundtrip(Message::make(
      protocol_ids::kReliableBroadcast, 1, "rb.relay", bare));
  EXPECT_EQ(out2.as<RbEnvelope>().body, nullptr);
}

TEST(WireCodec, UnknownPayloadTypeIsAnEncodeError) {
  struct NotRegistered {
    int x{0};
  };
  const Message m = Message::make(protocol_ids::kTesting, 1, "t.msg",
                                  NotRegistered{1});
  std::vector<std::uint8_t> frame;
  std::string error;
  EXPECT_FALSE(encode_message(m, &frame, &error));
  EXPECT_FALSE(error.empty());
}

/// Re-stamps the trailing CRC so decode failures exercise the *structural*
/// checks, not just the checksum.
void fix_crc(std::vector<std::uint8_t>& f) {
  const std::uint32_t c = crc32(f.data(), f.size() - 4);
  f[f.size() - 4] = static_cast<std::uint8_t>(c);
  f[f.size() - 3] = static_cast<std::uint8_t>(c >> 8);
  f[f.size() - 2] = static_cast<std::uint8_t>(c >> 16);
  f[f.size() - 1] = static_cast<std::uint8_t>(c >> 24);
}

// --- kv payloads ----------------------------------------------------------

kv::Request sample_kv_request() {
  kv::Request req;
  req.version = kv::kProtoVersion;
  req.flags = kv::kFlagLeaseRead;
  req.session = 0xDEADBEEF12345678ull;
  req.tag = 42;
  kv::Op put;
  put.op = kv::OpKind::kPut;
  put.seq = 7;
  put.key = "user/alice";
  put.value = std::string(kv::kMaxValueBytes, 'v');
  req.ops.push_back(put);
  kv::Op cas;
  cas.op = kv::OpKind::kCas;
  cas.seq = 8;
  cas.key = std::string(kv::kMaxKeyBytes, 'k');
  cas.value = "new";
  cas.expected = "old";
  req.ops.push_back(cas);
  kv::Op get;  // reads carry seq 0 and empty value/expected
  req.ops.push_back(get);
  return req;
}

TEST(WireCodec, KvRequestRoundTrip) {
  const kv::Request req = sample_kv_request();
  const Message out = roundtrip(Message::make(
      protocol_ids::kKvService, kv::kMsgClientRequest, "kv.request", req));
  const auto& d = out.as<kv::Request>();
  EXPECT_EQ(d.version, req.version);
  EXPECT_EQ(d.flags, req.flags);
  EXPECT_EQ(d.session, req.session);
  EXPECT_EQ(d.tag, req.tag);
  ASSERT_EQ(d.ops.size(), 3u);
  EXPECT_EQ(d.ops[0].op, kv::OpKind::kPut);
  EXPECT_EQ(d.ops[0].seq, 7u);
  EXPECT_EQ(d.ops[0].key, "user/alice");
  EXPECT_EQ(d.ops[0].value, std::string(kv::kMaxValueBytes, 'v'));
  EXPECT_EQ(d.ops[1].op, kv::OpKind::kCas);
  EXPECT_EQ(d.ops[1].key, std::string(kv::kMaxKeyBytes, 'k'));
  EXPECT_EQ(d.ops[1].expected, "old");
  EXPECT_EQ(d.ops[2].op, kv::OpKind::kGet);
  EXPECT_EQ(d.ops[2].seq, 0u);
}

TEST(WireCodec, KvReplyRoundTrip) {
  kv::Reply rep;
  rep.session = 99;
  rep.tag = 43;
  rep.status = kv::Status::kOk;
  rep.leader_hint = 2;
  rep.applied_slot = 17;
  rep.results.push_back({kv::Status::kOk, "value"});
  rep.results.push_back({kv::Status::kNotFound, ""});
  rep.results.push_back({kv::Status::kCasMismatch, "current"});
  const Message out = roundtrip(Message::make(
      protocol_ids::kKvService, kv::kMsgClientReply, "kv.reply", rep));
  const auto& d = out.as<kv::Reply>();
  EXPECT_EQ(d.session, 99u);
  EXPECT_EQ(d.tag, 43u);
  EXPECT_EQ(d.status, kv::Status::kOk);
  EXPECT_EQ(d.leader_hint, 2);
  EXPECT_EQ(d.applied_slot, 17);
  ASSERT_EQ(d.results.size(), 3u);
  EXPECT_EQ(d.results[0], (kv::OpResult{kv::Status::kOk, "value"}));
  EXPECT_EQ(d.results[1], (kv::OpResult{kv::Status::kNotFound, ""}));
  EXPECT_EQ(d.results[2], (kv::OpResult{kv::Status::kCasMismatch, "current"}));

  // A redirect reply: no results at all.
  kv::Reply redirect;
  redirect.status = kv::Status::kNotLeader;
  redirect.leader_hint = 0;
  const Message out2 = roundtrip(Message::make(
      protocol_ids::kKvService, kv::kMsgClientReply, "kv.reply", redirect));
  EXPECT_EQ(out2.as<kv::Reply>().status, kv::Status::kNotLeader);
  EXPECT_TRUE(out2.as<kv::Reply>().results.empty());
}

TEST(WireCodec, KvBatchRoundTripIncludingNestedRbEnvelope) {
  kv::BatchBody body;
  body.id = kv::make_batch_id(2, 514);
  for (std::uint64_t q = 1; q <= 5; ++q) {
    kv::Cmd c;
    c.session = 7;
    c.seq = q;
    c.op = kv::OpKind::kPut;
    c.key = "k" + std::to_string(q);
    c.value = "v" + std::to_string(q);
    body.cmds.push_back(c);
  }
  const Message out = roundtrip(Message::make(
      protocol_ids::kKvBatchRb, 2, "kv.batch", body));
  const auto& d = out.as<kv::BatchBody>();
  EXPECT_EQ(d.id, body.id);
  ASSERT_EQ(d.cmds.size(), 5u);
  EXPECT_EQ(d.cmds[4].key, "k5");
  EXPECT_EQ(d.cmds[4].seq, 5u);

  // And as it actually travels: nested inside an RB envelope (the batch
  // dissemination path).
  RbEnvelope env;
  env.origin = 2;
  env.seq = 514;
  env.tag = kv::kRbTagBatch;
  env.body_type = &typeid(kv::BatchBody);
  env.body = std::make_shared<const kv::BatchBody>(body);
  const Message out2 = roundtrip(Message::make(
      protocol_ids::kKvBatchRb, 1, "rb.relay", env));
  const auto& e = out2.as<RbEnvelope>();
  EXPECT_EQ(e.tag, kv::kRbTagBatch);
  EXPECT_EQ(e.as<kv::BatchBody>().id, body.id);
  EXPECT_EQ(e.as<kv::BatchBody>().cmds.size(), 5u);
}

TEST(WireCodec, KvSnapshotChunkRoundTrip) {
  kv::SnapshotChunk chunk;
  chunk.snap_id = 3;
  chunk.upto_slot = 128;
  chunk.index = 1;
  chunk.total = 4;
  chunk.bytes.resize(kv::kMaxSnapshotChunkBytes);
  for (std::size_t i = 0; i < chunk.bytes.size(); ++i) {
    chunk.bytes[i] = static_cast<std::uint8_t>(i * 31);
  }
  const Message out = roundtrip(Message::make(
      protocol_ids::kKvService, kv::kMsgSnapshotChunk, "kv.snap", chunk));
  const auto& d = out.as<kv::SnapshotChunk>();
  EXPECT_EQ(d.snap_id, 3u);
  EXPECT_EQ(d.upto_slot, 128);
  EXPECT_EQ(d.index, 1u);
  EXPECT_EQ(d.total, 4u);
  EXPECT_EQ(d.bytes, chunk.bytes);
}

TEST(WireCodec, KvBoundsAreEnforcedOnDecode) {
  // An op-count beyond kMaxOpsPerRequest, an out-of-range op kind, an
  // out-of-range status, and a chunk with index >= total must all be
  // rejected even under a valid CRC. Encode a valid frame, then corrupt
  // the specific field and refit the checksum.
  kv::Request req = sample_kv_request();
  req.ops.resize(1);
  req.ops[0].value = "v";  // keep the frame small and offsets simple
  auto f = encode_ok(Message::make(protocol_ids::kKvService,
                                   kv::kMsgClientRequest, "kv.request", req));
  // Brute-force the field offsets: flip every byte to 0xFF one at a time;
  // no mutation may crash, and every decode either fails or returns a
  // within-bounds request.
  for (std::size_t i = 0; i < f.size() - 4; ++i) {
    auto g = f;
    g[i] = 0xFF;
    fix_crc(g);
    if (auto decoded = decode_message(g)) {
      if (decoded->has_payload() &&
          decoded->protocol == protocol_ids::kKvService &&
          decoded->type == kv::kMsgClientRequest) {
        const auto& d = decoded->as<kv::Request>();
        EXPECT_LE(d.ops.size(), kv::kMaxOpsPerRequest);
        for (const auto& op : d.ops) {
          EXPECT_LE(op.key.size(), kv::kMaxKeyBytes);
          EXPECT_LE(op.value.size(), kv::kMaxValueBytes);
          EXPECT_LE(static_cast<int>(op.op),
                    static_cast<int>(kv::OpKind::kCloseSession));
        }
      }
    }
  }
}

TEST(WireCodec, KvRequestFrameSurvivesCorruptionFuzz) {
  // The client-facing frame is the one attackers reach; give it the same
  // treatment as sample_frame(): truncations, bit flips, random garbage.
  const auto f = encode_ok(Message::make(protocol_ids::kKvService,
                                         kv::kMsgClientRequest, "kv.request",
                                         sample_kv_request()));
  for (std::size_t len = 0; len < f.size(); ++len) {
    auto cut = std::vector<std::uint8_t>(f.begin(), f.begin() + len);
    EXPECT_FALSE(decode_message(cut).has_value()) << "length " << len;
    if (len >= 4) {
      fix_crc(cut);
      EXPECT_FALSE(decode_message(cut).has_value()) << "refit length " << len;
    }
  }
  Rng rng(20260808);
  for (int iter = 0; iter < 2000; ++iter) {
    auto g = f;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int k = 0; k < flips; ++k) {
      g[rng.below(g.size() - 4)] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    fix_crc(g);
    (void)decode_message(g);  // must not crash / OOB (ASan job)
  }
}

// --- corrupt-frame handling ----------------------------------------------

std::vector<std::uint8_t> sample_frame() {
  Message m = Message::make(protocol_ids::kCToP, 2, "ctp.list", sample_set());
  m.src = 1;
  m.dst = 2;
  return encode_ok(m);
}

TEST(WireCodec, RejectsBadMagicAndVersion) {
  auto f = sample_frame();
  f[0] ^= 0xFF;  // magic
  fix_crc(f);
  EXPECT_FALSE(decode_message(f).has_value());

  f = sample_frame();
  f[2] = kVersion + 1;  // version
  fix_crc(f);
  EXPECT_FALSE(decode_message(f).has_value());

  f = sample_frame();
  f[3] = 0x80;  // reserved flags must be zero
  fix_crc(f);
  EXPECT_FALSE(decode_message(f).has_value());
}

TEST(WireCodec, RejectsEveryTruncation) {
  const auto f = sample_frame();
  for (std::size_t len = 0; len < f.size(); ++len) {
    auto cut = std::vector<std::uint8_t>(f.begin(), f.begin() + len);
    EXPECT_FALSE(decode_message(cut).has_value()) << "length " << len;
    if (len >= 4) {
      // Even with a freshly valid checksum, a truncated body must fail on
      // structure (length mismatch / bounds), not crash.
      fix_crc(cut);
      EXPECT_FALSE(decode_message(cut).has_value()) << "refit length " << len;
    }
  }
}

TEST(WireCodec, RejectsTrailingGarbage) {
  auto f = sample_frame();
  f.insert(f.end() - 4, {0xAA, 0xBB, 0xCC});
  fix_crc(f);
  EXPECT_FALSE(decode_message(f).has_value());
}

TEST(WireCodec, SingleBitFlipsNeverDecodeDifferently) {
  // Deterministic fuzz: every single-bit flip either fails the checksum
  // (the overwhelmingly common case) or — never — silently yields a frame.
  const auto f = sample_frame();
  for (std::size_t byte = 0; byte < f.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto g = f;
      g[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(decode_message(g).has_value())
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(WireCodec, RandomGarbageFuzz) {
  // Deterministic random frames: none may crash, read OOB (ASan job), or
  // produce a payload with a huge allocation.
  Rng rng(20260805);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.below(256);
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)decode_message(junk);
  }
  // And mutated real frames with refit checksums, which reach the payload
  // decoders rather than dying at the CRC gate.
  const auto f = sample_frame();
  for (int iter = 0; iter < 2000; ++iter) {
    auto g = f;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int k = 0; k < flips; ++k) {
      g[rng.below(g.size() - 4)] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    fix_crc(g);
    if (auto decoded = decode_message(g)) {
      // A surviving frame must at least be structurally sane.
      EXPECT_GE(decoded->src, kNoProcess);
      EXPECT_GE(decoded->dst, kNoProcess);
    }
  }
}

TEST(WireCodec, RejectsOversizedLengthFieldsWithoutAllocating) {
  // A frame claiming a 2^31-element vector must be rejected by the bounds
  // checks before any reserve() happens (would OOM / be caught by ASan).
  Message m = Message::make(protocol_ids::kStableLeader, 1, "sl.ok",
                            std::vector<std::uint64_t>{1, 2, 3});
  auto f = encode_ok(m);
  // The u64-vector length field sits right after the u16 kind + u32 len of
  // the payload section; locate it by re-encoding knowledge: payload starts
  // at (frame size - 4 crc - payload), payload = 4 len + 3*8. Overwrite the
  // element count with a huge value.
  const std::size_t payload_start = f.size() - 4 - (4 + 24);
  f[payload_start] = 0xFF;
  f[payload_start + 1] = 0xFF;
  f[payload_start + 2] = 0xFF;
  f[payload_start + 3] = 0x7F;
  fix_crc(f);
  EXPECT_FALSE(decode_message(f).has_value());
}

// --- causal sequence tagging ----------------------------------------------
//
// The kFlagCausalSeq flags bit inserts a u64 send sequence right after the
// flags byte, letting ecfd_trace stitch exact send->deliver edges across
// processes. The tag is only ever emitted while a recorder is attached, so
// untraced frames must stay byte-identical to the pre-flag format.

TEST(WireCodec, CausalSeqRoundTrips) {
  Message m = base(protocol_ids::kCToP, 1, "ctp.alive");
  std::vector<std::uint8_t> frame;
  std::string error;
  ASSERT_TRUE(encode_message(m, &frame, &error, /*causal_seq=*/0xABCDEF12345ULL))
      << error;
  EXPECT_EQ(frame[3], kFlagCausalSeq);

  std::uint64_t seq = 0;
  auto decoded = decode_message(frame.data(), frame.size(), &error, &seq);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(seq, 0xABCDEF12345ULL);
  EXPECT_EQ(decoded->src, m.src);
  EXPECT_STREQ(decoded->label, m.label);

  // A decoder that doesn't care about the tag still accepts the frame.
  EXPECT_TRUE(decode_message(frame).has_value());
}

TEST(WireCodec, UntaggedFramesAreByteIdenticalToLegacy) {
  const Message m = base(protocol_ids::kCToP, 1, "ctp.alive");
  std::vector<std::uint8_t> plain;
  std::vector<std::uint8_t> explicit_zero;
  std::string error;
  ASSERT_TRUE(encode_message(m, &plain, &error));
  ASSERT_TRUE(encode_message(m, &explicit_zero, &error, /*causal_seq=*/0));
  EXPECT_EQ(plain, explicit_zero);
  EXPECT_EQ(plain[3], 0);  // flags byte stays zero

  std::vector<std::uint8_t> tagged;
  ASSERT_TRUE(encode_message(m, &tagged, &error, /*causal_seq=*/1));
  EXPECT_EQ(tagged.size(), plain.size() + 8);  // exactly the u64 tag

  // Decoding an untagged frame reports seq 0 ("no tag").
  std::uint64_t seq = 99;
  ASSERT_TRUE(decode_message(plain.data(), plain.size(), &error, &seq));
  EXPECT_EQ(seq, 0u);
}

TEST(WireCodec, RejectsAZeroCausalSeqOnTheWire) {
  // seq 0 means "untagged" and must never appear in a flagged frame; a
  // frame carrying it is structurally invalid. Seq bytes sit at [4, 12).
  Message m = base(protocol_ids::kCToP, 1, "ctp.alive");
  std::vector<std::uint8_t> frame;
  std::string error;
  ASSERT_TRUE(encode_message(m, &frame, &error, /*causal_seq=*/7));
  for (std::size_t i = 4; i < 12; ++i) frame[i] = 0;
  fix_crc(frame);
  EXPECT_FALSE(decode_message(frame).has_value());
}

TEST(WireCodec, TaggedFrameRejectsEveryTruncation) {
  Message m = base(protocol_ids::kCToP, 1, "ctp.alive");
  std::vector<std::uint8_t> frame;
  std::string error;
  ASSERT_TRUE(encode_message(m, &frame, &error, /*causal_seq=*/42));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    auto cut = std::vector<std::uint8_t>(frame.begin(), frame.begin() + len);
    EXPECT_FALSE(decode_message(cut).has_value()) << "length " << len;
    if (len >= 4) {
      fix_crc(cut);
      EXPECT_FALSE(decode_message(cut).has_value()) << "refit length " << len;
    }
  }
}

}  // namespace
}  // namespace ecfd::wire
