// Tests for the observability layer (src/obs/): event rings, the dual
// hot/state routing, the metrics registry's histogram bucketing, trace
// JSON round-trips, cross-document merging, and the determinism guarantee
// that the same sim seed yields byte-identical trace files.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeline.hpp"
#include "runner/suite.hpp"

namespace ecfd::obs {
namespace {

// --- EventRing --------------------------------------------------------

TEST(EventRing, KeepsNewestOnOverflow) {
  EventRing ring;
  ring.init(/*host=*/3, /*depth=*/8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    ring.push(/*time=*/i, EventType::kSend, /*a=*/i);
  }
  EXPECT_EQ(ring.pushed(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);

  std::vector<Event> events;
  ring.snapshot(&events);
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, and only the newest 8 survive: times 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, static_cast<TimeUs>(12 + i));
    EXPECT_EQ(events[i].host, 3);
    EXPECT_EQ(events[i].type, EventType::kSend);
  }
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EventRing ring;
  ring.init(0, 5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(EventRing, UninitializedRingIsNoOp) {
  EventRing ring;
  EXPECT_FALSE(ring.enabled());
  ring.push(1, EventType::kSend, 0);  // must not crash
  EXPECT_EQ(ring.pushed(), 0u);
}

TEST(EventRing, WraparoundSequencePreservesOrderAcrossManyLaps) {
  EventRing ring;
  ring.init(0, 4);
  for (int i = 0; i < 1000; ++i) ring.push(i, EventType::kDeliver, i);
  std::vector<Event> events;
  std::vector<std::uint64_t> seqs;
  ring.snapshot(&events, &seqs);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].time, static_cast<TimeUs>(996 + i));
    EXPECT_EQ(seqs[i], 996u + i);
  }
}

// --- Hot/state routing ------------------------------------------------

TEST(EventRouting, HotEventsAreChurnStateEventsAreTransitions) {
  EXPECT_TRUE(is_hot_event(EventType::kSend));
  EXPECT_TRUE(is_hot_event(EventType::kDeliver));
  EXPECT_TRUE(is_hot_event(EventType::kTimerSet));
  EXPECT_TRUE(is_hot_event(EventType::kTimerCancel));
  EXPECT_TRUE(is_hot_event(EventType::kDrop));
  EXPECT_FALSE(is_hot_event(EventType::kSuspect));
  EXPECT_FALSE(is_hot_event(EventType::kUnsuspect));
  EXPECT_FALSE(is_hot_event(EventType::kLeaderChange));
  EXPECT_FALSE(is_hot_event(EventType::kRoundStart));
  EXPECT_FALSE(is_hot_event(EventType::kDecide));
  EXPECT_FALSE(is_hot_event(EventType::kCrash));
  EXPECT_FALSE(is_hot_event(EventType::kVerdict));
  EXPECT_FALSE(is_hot_event(EventType::kNote));
}

TEST(Recorder, StateRingSurvivesHotChurn) {
  // The dual-ring guarantee: one early suspicion outlives any amount of
  // message traffic that overflows the hot ring.
  Recorder rec(/*depth=*/8);
  rec.bind_hosts(1);
  rec.state_ring(0).push(5, EventType::kSuspect, /*a=*/2);
  for (int i = 0; i < 10'000; ++i) {
    rec.ring(0).push(10 + i, EventType::kSend, 1);
  }
  bool suspect_survived = false;
  for (const Event& e : rec.merged()) {
    if (e.type == EventType::kSuspect && e.time == 5 && e.a == 2) {
      suspect_survived = true;
    }
  }
  EXPECT_TRUE(suspect_survived);
  EXPECT_GT(rec.dropped_total(), 0u);
}

TEST(Recorder, MergedOrdersByTimeThenHost) {
  Recorder rec(8);
  rec.bind_hosts(2);
  rec.ring(1).push(30, EventType::kSend, 0);
  rec.ring(0).push(10, EventType::kSend, 1);
  rec.state_ring(0).push(20, EventType::kSuspect, 1);
  const std::vector<Event> m = rec.merged();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].time, 10);
  EXPECT_EQ(m[1].time, 20);
  EXPECT_EQ(m[2].time, 30);
}

TEST(Recorder, InternIsStableAndResolvable) {
  Recorder rec(8);
  const std::int32_t a = rec.intern("hb_p.suspect");
  const std::int32_t b = rec.intern("other");
  EXPECT_EQ(rec.intern("hb_p.suspect"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.string_at(a), "hb_p.suspect");
  EXPECT_EQ(rec.string_at(-1), "");
}

// --- Histogram --------------------------------------------------------

TEST(Histogram, BucketEdges) {
  // Bucket 0 = {<=0}; bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(-5), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of((std::int64_t{1} << 40)), 41);
  // The last bucket is open-ended: clamp, don't overflow.
  EXPECT_EQ(Histogram::bucket_of(std::int64_t{1} << 62),
            Histogram::kBuckets - 1);

  for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
    // Every bucket's lower bound lands in that bucket; one less lands in
    // the previous one.
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lower(i)), i);
    if (i >= 2) {
      EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lower(i) - 1), i - 1);
    }
  }
}

TEST(Histogram, ObserveAccumulatesCountSumBuckets) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(1);
  h.observe(1000);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 1002);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_of(1000)), 1);
}

TEST(MetricsRegistry, JsonIsDeterministicAndTagged) {
  MetricsRegistry m;
  m.add("b.second", 2);
  m.add("a.first", 1);
  m.histogram("lat")->observe(5);
  std::ostringstream os1;
  std::ostringstream os2;
  m.write_json(os1, "test");
  m.write_json(os2, "test");
  EXPECT_EQ(os1.str(), os2.str());
  EXPECT_NE(os1.str().find("\"schema\": \"ecfd.metrics.v1\""),
            std::string::npos);
  // Keys sorted: a.first before b.second.
  EXPECT_LT(os1.str().find("a.first"), os1.str().find("b.second"));
}

// --- Trace JSON round-trip and merge ----------------------------------

Recorder& tiny_recorder(Recorder& rec) {
  rec.bind_hosts(2);
  rec.ring(0).push(10, EventType::kSend, 1, /*b=*/7);
  rec.ring(1).push(12, EventType::kDeliver, 0, 7);
  rec.state_ring(1).push(20, EventType::kSuspect, 0);
  rec.state_ring(1).push(40, EventType::kUnsuspect, 0);
  rec.state_ring(0).push(30, EventType::kNote, -1, rec.intern("detail"),
                         rec.intern("tag"));
  rec.system_ring().push(50, EventType::kVerdict, 1,
                         0, rec.intern("fd.strong_completeness"));
  return rec;
}

TEST(Timeline, TraceJsonRoundTrips) {
  Recorder rec(16);
  tiny_recorder(rec);
  std::ostringstream os;
  rec.write_trace_json(os);

  std::string error;
  const auto doc = parse_trace_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->n, 2);
  EXPECT_EQ(doc->meta.clock, ClockDomain::kVirtual);
  ASSERT_EQ(doc->events.size(), 6u);

  // Same canonical order as Recorder::merged(); labels resolve through the
  // parsed string table.
  const Event& note = doc->events[3];
  EXPECT_EQ(note.type, EventType::kNote);
  EXPECT_EQ(doc->strings[static_cast<std::size_t>(note.label)], "tag");
  EXPECT_EQ(doc->strings[static_cast<std::size_t>(note.b)], "detail");
  const Event& verdict = doc->events[5];
  EXPECT_EQ(verdict.type, EventType::kVerdict);
  EXPECT_EQ(verdict.host, -1);
}

TEST(Timeline, ParseRejectsWrongSchema) {
  std::string error;
  EXPECT_FALSE(
      parse_trace_json("{\"schema\": \"nope.v1\"}", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Timeline, MergeCalibratesMonotonicEpochs) {
  Recorder r1(8);
  r1.bind_hosts(1);
  r1.meta().source = "socket";
  r1.meta().clock = ClockDomain::kMonotonic;
  r1.meta().wall_epoch_us = 1'000'000;
  r1.ring(0).push(0, EventType::kSend, 1);

  Recorder r2(8);
  r2.bind_hosts(2);
  r2.meta().source = "socket";
  r2.meta().clock = ClockDomain::kMonotonic;
  r2.meta().wall_epoch_us = 1'000'500;
  r2.ring(1).push(0, EventType::kDeliver, 0);

  const MergedTimeline t =
      merge({snapshot_doc(r1, "n0"), snapshot_doc(r2, "n1")});
  EXPECT_TRUE(t.monotonic);
  EXPECT_EQ(t.n, 2);
  ASSERT_EQ(t.events.size(), 2u);
  // Earliest epoch is t=0; the second doc's events shift by the epoch gap.
  EXPECT_EQ(t.events[0].time, 0);
  EXPECT_EQ(t.events[1].time, 500);
}

TEST(Timeline, MergeReinternsLabels) {
  Recorder r1(8);
  r1.bind_hosts(1);
  r1.state_ring(0).push(1, EventType::kNote, -1, r1.intern("d1"),
                        r1.intern("shared"));
  Recorder r2(8);
  r2.bind_hosts(1);
  // Interned in a different order, so the raw ids differ across docs.
  r2.state_ring(0).push(2, EventType::kNote, -1, r2.intern("shared"),
                        r2.intern("d2"));

  const MergedTimeline t =
      merge({snapshot_doc(r1, "a"), snapshot_doc(r2, "b")});
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.strings[static_cast<std::size_t>(t.events[0].label)], "shared");
  EXPECT_EQ(t.strings[static_cast<std::size_t>(t.events[0].b)], "d1");
  EXPECT_EQ(t.strings[static_cast<std::size_t>(t.events[1].label)], "d2");
  EXPECT_EQ(t.strings[static_cast<std::size_t>(t.events[1].b)], "shared");
}

TEST(Timeline, ChromeExportReconstructsSuspicionSpans) {
  Recorder rec(16);
  rec.bind_hosts(1);
  rec.state_ring(0).push(100, EventType::kSuspect, 0);
  rec.state_ring(0).push(400, EventType::kUnsuspect, 0);
  rec.state_ring(0).push(500, EventType::kLeaderChange, 0);

  const MergedTimeline t = merge({snapshot_doc(rec, "test")});
  std::ostringstream os;
  write_chrome_trace(os, t);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  // The suspect/unsuspect pair must come back as one "X" span of dur 300.
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"suspect p0\""), std::string::npos);
  EXPECT_NE(j.find("\"dur\": 300"), std::string::npos);
  EXPECT_NE(j.find("\"schema\": \"ecfd.trace.v1\""), std::string::npos);
}

// --- Determinism: same seed => byte-identical trace -------------------

TEST(Timeline, SameSimSeedYieldsByteIdenticalTraces) {
  // Two independent recorders observing two runs of the same seeded
  // simulation must serialize to identical bytes — the property that lets
  // a trace artifact stand in for the run in CI diffs.
  Recorder rec1(1024);
  Recorder rec2(1024);
  const runner::CaseMetrics m1 =
      runner::run_consensus_case(5, 42, consensus::Algo::kEcfdC, 1, &rec1);
  const runner::CaseMetrics m2 =
      runner::run_consensus_case(5, 42, consensus::Algo::kEcfdC, 1, &rec2);
  EXPECT_EQ(m1.hash, m2.hash);

  std::ostringstream os1;
  std::ostringstream os2;
  rec1.write_trace_json(os1);
  rec2.write_trace_json(os2);
  const std::string t1 = os1.str();
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, os2.str());

  // And recording must not perturb the simulation itself.
  const runner::CaseMetrics bare =
      runner::run_consensus_case(5, 42, consensus::Algo::kEcfdC, 1);
  EXPECT_EQ(bare.hash, m1.hash);

  // The file parses back to the events the recorder held.
  std::string error;
  const auto doc = parse_trace_json(t1, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->events.size(), rec1.merged().size());
}

// --- Causal clock refinement ------------------------------------------

Event wire_event(TimeUs t, int host, EventType type, int other,
                 std::int64_t seq) {
  Event e;
  e.time = t;
  e.host = host;
  e.type = type;
  e.a = other;
  e.b = seq;
  return e;
}

TEST(Timeline, WireSeqEdgesCorrectPerProcessClockError) {
  // Two monotonic docs with IDENTICAL wall epochs, but doc B's clock reads
  // 5000us ahead of true time — an error wall-epoch calibration cannot
  // see. The seq-matched wire edges can: A->B one-way delays read 5000us
  // too long, B->A reads 5000us too short, and the NTP-style half
  // difference recovers the 5000us correction exactly (symmetric links).
  //
  // True story (200us latency each way):
  //   A sends seq 1 at true t=1000, B delivers at true 1200 (records 6200)
  //   B sends seq 1 at true t=2000 (records 7000), A delivers at 2200
  TimelineDoc a;
  a.meta.source = "socket";
  a.meta.clock = ClockDomain::kMonotonic;
  a.meta.wall_epoch_us = 1'000'000;
  a.n = 2;
  a.events.push_back(
      wire_event(1000, 0, EventType::kWireSend, /*dst=*/1, /*seq=*/1));
  a.events.push_back(
      wire_event(2200, 0, EventType::kWireDeliver, /*src=*/1, /*seq=*/1));

  TimelineDoc b = a;
  b.events.clear();
  b.events.push_back(
      wire_event(6200, 1, EventType::kWireDeliver, /*src=*/0, /*seq=*/1));
  b.events.push_back(
      wire_event(7000, 1, EventType::kWireSend, /*dst=*/0, /*seq=*/1));

  const MergedTimeline t = merge({a, b});
  ASSERT_EQ(t.events.size(), 4u);
  TimeUs b_deliver = -1;
  TimeUs b_send = -1;
  for (const Event& e : t.events) {
    if (e.host == 1 && e.type == EventType::kWireDeliver) b_deliver = e.time;
    if (e.host == 1 && e.type == EventType::kWireSend) b_send = e.time;
  }
  // Without the refinement these would sit at 6200/7000; corrected they
  // land at the true 1200/2000.
  EXPECT_EQ(b_deliver, 1200);
  EXPECT_EQ(b_send, 2000);
  // And the merged order is now the true causal order: A's send first,
  // then B's delivery of it.
  EXPECT_EQ(t.events.front().type, EventType::kWireSend);
  EXPECT_EQ(t.events.front().host, 0);
}

TEST(Timeline, DocsWithoutWireEdgesKeepEpochOnlyCalibration) {
  // No seq-matched frames between the docs: the refinement must leave the
  // epoch-difference offsets untouched rather than guess.
  TimelineDoc a;
  a.meta.clock = ClockDomain::kMonotonic;
  a.meta.wall_epoch_us = 1'000'000;
  a.n = 2;
  a.events.push_back(wire_event(100, 0, EventType::kSend, 1, 0));

  TimelineDoc b = a;
  b.meta.wall_epoch_us = 1'003'000;  // started 3ms later
  b.events.clear();
  b.events.push_back(wire_event(100, 1, EventType::kSend, 0, 0));

  const MergedTimeline t = merge({a, b});
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].time, 100);   // doc A: earliest epoch = base
  EXPECT_EQ(t.events[1].time, 3100);  // doc B: rebased by the epoch delta
}

}  // namespace
}  // namespace ecfd::obs
