#include "net/process_set.hpp"

#include <gtest/gtest.h>

namespace ecfd {
namespace {

TEST(ProcessSet, StartsEmpty) {
  ProcessSet s(8);
  EXPECT_EQ(s.size(), 0);
  EXPECT_TRUE(s.empty());
  for (ProcessId p = 0; p < 8; ++p) EXPECT_FALSE(s.contains(p));
}

TEST(ProcessSet, AddRemoveContains) {
  ProcessSet s(10);
  s.add(3);
  s.add(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 2);
  s.remove(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
}

TEST(ProcessSet, AddIsIdempotent) {
  ProcessSet s(5);
  s.add(2);
  s.add(2);
  EXPECT_EQ(s.size(), 1);
}

TEST(ProcessSet, ContainsOutOfRangeIsFalse) {
  ProcessSet s(4);
  EXPECT_FALSE(s.contains(-1));
  EXPECT_FALSE(s.contains(4));
  EXPECT_FALSE(s.contains(kNoProcess));
}

TEST(ProcessSet, FullUniverse) {
  ProcessSet s = ProcessSet::full(70);  // spans two words
  EXPECT_EQ(s.size(), 70);
  for (ProcessId p = 0; p < 70; ++p) EXPECT_TRUE(s.contains(p));
  EXPECT_EQ(s.first_excluded(), kNoProcess);
}

TEST(ProcessSet, FirstAndFirstExcluded) {
  ProcessSet s(6);
  EXPECT_EQ(s.first(), kNoProcess);
  EXPECT_EQ(s.first_excluded(), 0);
  s.add(0);
  s.add(1);
  s.add(3);
  EXPECT_EQ(s.first(), 0);
  EXPECT_EQ(s.first_excluded(), 2);
}

TEST(ProcessSet, MembersSortedAscending) {
  ProcessSet s(66);
  s.add(65);
  s.add(0);
  s.add(33);
  const auto m = s.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 33);
  EXPECT_EQ(m[2], 65);
}

TEST(ProcessSet, UnionIntersectionDifference) {
  ProcessSet a(8), b(8);
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(3);
  ProcessSet u = a | b;
  EXPECT_EQ(u.size(), 3);
  EXPECT_TRUE(u.contains(1) && u.contains(2) && u.contains(3));
  ProcessSet i = a & b;
  EXPECT_EQ(i.size(), 1);
  EXPECT_TRUE(i.contains(2));
  ProcessSet d = a - b;
  EXPECT_EQ(d.size(), 1);
  EXPECT_TRUE(d.contains(1));
}

TEST(ProcessSet, EqualityIsValueBased) {
  ProcessSet a(8), b(8);
  a.add(5);
  b.add(5);
  EXPECT_EQ(a, b);
  b.add(6);
  EXPECT_NE(a, b);
}

TEST(ProcessSet, ClearEmpties) {
  ProcessSet s = ProcessSet::full(12);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.universe_size(), 12);
}

TEST(ProcessSet, ToStringRendersMembers) {
  ProcessSet s(8);
  s.add(0);
  s.add(4);
  EXPECT_EQ(s.to_string(), "{p0,p4}");
  EXPECT_EQ(ProcessSet(3).to_string(), "{}");
}

TEST(ProcessSet, WordBoundary) {
  ProcessSet s(128);
  s.add(63);
  s.add(64);
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  s.remove(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_EQ(s.first(), 64);
}

}  // namespace
}  // namespace ecfd
