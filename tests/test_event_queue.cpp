#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ecfd::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(5, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(5, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, CancelFiredEventFails) {
  EventQueue q;
  const EventId id = q.schedule(1, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1, [] {});
  q.schedule(9, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, NextTimeOnEmptyIsNever) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  // After an event fires, its slot is recycled with a bumped generation;
  // the old id must bounce off the new occupant.
  EventQueue q;
  const EventId old_id = q.schedule(1, [] {});
  (void)q.pop();
  const EventId new_id = q.schedule(2, [] {});
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(new_id));
}

TEST(EventQueue, NextIdPredictsScheduleResult) {
  EventQueue q;
  const EventId fresh_predicted = q.next_id();
  EXPECT_EQ(fresh_predicted, q.schedule(5, [] {}));
  (void)q.pop();  // recycles the slot with a new generation
  const EventId recycled_predicted = q.next_id();
  EXPECT_EQ(recycled_predicted, q.schedule(6, [] {}));
}

TEST(Scheduler, SelfCancelDuringFireIsANoOp) {
  // Regression: a firing event's slot is off the heap but not yet
  // recycled while its action runs; cancelling its own id from inside
  // the action must fail cleanly instead of corrupting the heap.
  Scheduler s;
  EventId self = kInvalidEvent;
  bool bystander_ran = false;
  self = s.schedule_at(5, [&] { EXPECT_FALSE(s.cancel(self)); });
  s.schedule_at(5, [&] { bystander_ran = true; });
  s.run();
  EXPECT_TRUE(bystander_ran);
  EXPECT_EQ(s.fired(), 2u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunUntilExecutesDueEventsAndAdvancesClock) {
  Scheduler s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(30, [&] { ++count; });
  EXPECT_EQ(s.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  s.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.now(), 100);  // clock reaches deadline even past last event
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  std::vector<TimeUs> fired;
  s.schedule_at(5, [&] {
    fired.push_back(s.now());
    s.schedule_after(7, [&] { fired.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(fired, (std::vector<TimeUs>{5, 12}));
}

TEST(Scheduler, ScheduleAfterNegativeClampsToNow) {
  Scheduler s;
  s.run_until(50);
  bool ran = false;
  s.schedule_after(-10, [&] { ran = true; });
  s.run_until(50);
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 50);
}

TEST(Scheduler, CancelInsideEvent) {
  Scheduler s;
  bool ran = false;
  EventId later = s.schedule_at(10, [&] { ran = true; });
  s.schedule_at(5, [&] { s.cancel(later); });
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, FiredCounter) {
  Scheduler s;
  for (int i = 0; i < 4; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.fired(), 4u);
}

TEST(Scheduler, RecurringEventChain) {
  Scheduler s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) s.schedule_after(100, tick);
  };
  s.schedule_after(100, tick);
  s.run_until(sec(1));
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(s.pending(), 0u);
}

}  // namespace
}  // namespace ecfd::sim
