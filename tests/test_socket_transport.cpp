// Integration tests for the UDP socket transport: real datagrams over
// loopback between SocketEnvs running in separate threads (mirroring
// test_thread_runtime.cpp). Nondeterministic; assertions are eventual with
// generous real-time deadlines.
#include "transport/socket_env.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fd/heartbeat_p.hpp"
#include "net/protocol_ids.hpp"
#include "transport/node_config.hpp"
#include "wire/codec.hpp"

namespace ecfd::transport {
namespace {

/// Builds a loopback peer table on ports picked from the ephemeral-ish
/// range; base is spread per test to avoid clashes between tests running
/// in one ctest invocation.
std::vector<PeerAddr> loopback_peers(int n, std::uint16_t base) {
  std::vector<PeerAddr> peers;
  for (int i = 0; i < n; ++i) {
    peers.push_back({"127.0.0.1", static_cast<std::uint16_t>(base + i)});
  }
  return peers;
}

SocketEnv::Options options(ProcessId self, const std::vector<PeerAddr>& peers) {
  SocketEnv::Options o;
  o.self = self;
  o.peers = peers;
  o.seed = 42;
  return o;
}

class Echo final : public Protocol {
 public:
  explicit Echo(Env& env) : Protocol(env, protocol_ids::kTesting) {}
  void on_message(const Message& m) override {
    if (m.type == 1) {
      ++pings;
      env_.send(m.src, Message::make_empty(protocol_id(), 2, "t.pong"));
    } else if (m.type == 2) {
      ++pongs;
    }
  }
  void ping(ProcessId dst) {
    env_.send(dst, Message::make_empty(protocol_id(), 1, "t.ping"));
  }
  std::atomic<int> pings{0};
  std::atomic<int> pongs{0};
};

TEST(SocketTransport, PingPongOverLoopbackUdp) {
  const auto peers = loopback_peers(2, 21200);
  SocketEnv a(options(0, peers));
  SocketEnv b(options(1, peers));
  std::string error;
  ASSERT_TRUE(a.open(&error)) << error;
  ASSERT_TRUE(b.open(&error)) << error;

  auto& ea = a.emplace<Echo>();
  auto& eb = b.emplace<Echo>();
  a.start();
  b.start();

  ea.ping(1);
  std::thread tb([&] { b.run_until([&] { return eb.pings.load() >= 1; }, sec(5)); });
  const bool got_pong =
      a.run_until([&] { return ea.pongs.load() >= 1; }, sec(5));
  tb.join();

  EXPECT_TRUE(got_pong);
  EXPECT_GE(eb.pings.load(), 1);
  EXPECT_EQ(a.counters().get("net.sent.p1"), 1);
  EXPECT_GE(b.counters().get("net.recv.p0"), 1);
  EXPECT_EQ(b.counters().get("net.decode_error"), 0);
}

TEST(SocketTransport, HeartbeatPDetectsKilledPeerWithinDeadline) {
  // Two processes on loopback UDP; p1 stops participating (its loop is
  // simply never run again — the moral equivalent of kill -9), and p0's
  // heartbeat ◇P must suspect it within the adaptive timeout.
  const auto peers = loopback_peers(2, 21210);
  SocketEnv a(options(0, peers));
  SocketEnv b(options(1, peers));
  std::string error;
  ASSERT_TRUE(a.open(&error)) << error;
  ASSERT_TRUE(b.open(&error)) << error;

  fd::HeartbeatP::Config cfg;
  cfg.period = msec(25);
  cfg.initial_timeout = msec(100);
  cfg.timeout_increment = msec(50);
  auto& fda = a.emplace<fd::HeartbeatP>(cfg);
  auto& fdb = b.emplace<fd::HeartbeatP>(cfg);
  a.start();
  b.start();

  // Phase 1: both alive — p0 must trust p1.
  std::atomic<bool> b_alive{true};
  std::thread tb([&] {
    while (b_alive.load()) b.run_for(msec(20));
  });
  const bool trusted = a.run_until(
      [&] { return !fda.suspected().contains(1); }, sec(5));
  EXPECT_TRUE(trusted);

  // Phase 2: p1 "crashes" — its event loop stops for good.
  b_alive.store(false);
  tb.join();
  (void)fdb;

  const bool suspected = a.run_until(
      [&] { return fda.suspected().contains(1); }, sec(5));
  EXPECT_TRUE(suspected);
  EXPECT_GT(a.counters().get("msg.hb_p.alive.sent"), 0);
}

TEST(SocketTransport, InjectedLossAndDelayStillConverge) {
  // Chaos knobs on: 20% injected loss and up to 30ms extra delay. The
  // detector keeps flapping under loss but must still (a) exchange
  // traffic, (b) count drops.
  const auto peers = loopback_peers(2, 21220);
  auto oa = options(0, peers);
  oa.loss = 0.2;
  oa.min_extra_delay = msec(1);
  oa.max_extra_delay = msec(30);
  SocketEnv a(oa);
  SocketEnv b(options(1, peers));
  std::string error;
  ASSERT_TRUE(a.open(&error)) << error;
  ASSERT_TRUE(b.open(&error)) << error;

  auto& ea = a.emplace<Echo>();
  auto& eb = b.emplace<Echo>();
  a.start();
  b.start();

  std::atomic<bool> stop{false};
  std::thread tb([&] {
    while (!stop.load()) b.run_for(msec(10));
  });
  for (int i = 0; i < 200; ++i) ea.ping(1);
  a.run_until([&] { return ea.pongs.load() >= 50; }, sec(10));
  stop.store(true);
  tb.join();

  EXPECT_GE(ea.pongs.load(), 50);
  EXPECT_GT(a.counters().get("msg.t.ping.dropped"), 0);
  EXPECT_GE(eb.pings.load(), 50);
}

TEST(SocketTransport, MisaddressedAndCorruptDatagramsAreCountedNotDelivered) {
  const auto peers = loopback_peers(2, 21230);
  SocketEnv a(options(0, peers));
  std::string error;
  ASSERT_TRUE(a.open(&error)) << error;
  auto& ea = a.emplace<Echo>();
  a.start();

  // Fire raw datagrams at node 0 from a plain socket: garbage bytes, a
  // valid frame addressed to the wrong node, and one legitimate frame.
  const int raw = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_port = htons(peers[0].port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &to.sin_addr), 1);
  const auto fire = [&](const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::sendto(raw, bytes.data(), bytes.size(), 0,
                       reinterpret_cast<const sockaddr*>(&to), sizeof(to)),
              static_cast<ssize_t>(bytes.size()));
  };

  fire({0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02});  // garbage

  Message misaddressed = Message::make_empty(protocol_ids::kTesting, 1, "t.ping");
  misaddressed.src = 1;
  misaddressed.dst = 1;  // not node 0
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(wire::encode_message(misaddressed, &frame));
  fire(frame);

  Message good = Message::make_empty(protocol_ids::kTesting, 1, "t.ping");
  good.src = 1;
  good.dst = 0;
  ASSERT_TRUE(wire::encode_message(good, &frame));
  fire(frame);
  ::close(raw);

  a.run_until([&] { return ea.pings.load() >= 1; }, sec(5));
  EXPECT_EQ(ea.pings.load(), 1);
  EXPECT_EQ(a.counters().get("net.decode_error"), 1);
  EXPECT_EQ(a.counters().get("net.misaddressed"), 1);
}

TEST(SocketTransport, ConfigParsing) {
  const std::string text = R"(
# demo cluster
[cluster]
seed = 7
fd = heartbeat_p
period_ms = 25
initial_timeout_ms = 100
timeout_increment_ms = 50
consensus = true

[peers]
0 = 127.0.0.1:9100
1 = 127.0.0.1:9101
2 = 127.0.0.1:9102

[chaos]
loss = 0.1
min_delay_ms = 1
max_delay_ms = 5
)";
  std::string error;
  const auto cfg = parse_node_config(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->n(), 3);
  EXPECT_EQ(cfg->peers[2].port, 9102);
  EXPECT_EQ(cfg->seed, 7u);
  EXPECT_EQ(cfg->fd, "heartbeat_p");
  EXPECT_TRUE(cfg->consensus);
  EXPECT_EQ(cfg->period, msec(25));
  EXPECT_EQ(cfg->initial_timeout, msec(100));
  EXPECT_DOUBLE_EQ(cfg->loss, 0.1);
  EXPECT_EQ(cfg->max_delay, msec(5));

  // Rejections: gap in the peer table, bad address, unknown key.
  EXPECT_FALSE(parse_node_config("[peers]\n0 = 127.0.0.1:1\n2 = 127.0.0.1:2\n",
                                 &error)
                   .has_value());
  EXPECT_FALSE(
      parse_node_config("[peers]\n0 = nowhere\n", &error).has_value());
  EXPECT_FALSE(parse_node_config("[cluster]\nbogus = 1\n[peers]\n0 = 1.2.3.4:5\n",
                                 &error)
                   .has_value());
  EXPECT_FALSE(parse_node_config("", &error).has_value());
}

}  // namespace
}  // namespace ecfd::transport
