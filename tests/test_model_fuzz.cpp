// Randomized property tests pitting core data structures against simple
// reference models (parameterized over seeds).
//
// Set ECFD_SEED=N to rerun every suite with exactly that seed; each
// failure prints the seed that reproduces it (scenario_util.hpp).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/process_set.hpp"
#include "scenario_util.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace ecfd {
namespace {

// --- EventQueue vs a multimap reference ---------------------------------

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  SCOPED_TRACE(testutil::seed_trace(GetParam()));
  Rng rng(GetParam());
  sim::EventQueue q;
  // Reference: id -> (time, schedule order). Ids are slot+generation
  // encodings and carry no ordering, so the model tracks schedule order
  // explicitly — ties at the same instant must fire in that order.
  struct RefEntry {
    TimeUs time{};
    std::uint64_t order{};
  };
  std::map<sim::EventId, RefEntry> live;
  std::vector<sim::EventId> ids;
  std::uint64_t order_counter = 0;

  for (int step = 0; step < 3000; ++step) {
    const auto op = rng.below(10);
    if (op < 5) {  // schedule
      const TimeUs t = rng.range(0, 200);
      const sim::EventId id = q.schedule(t, [] {});
      // Slot reuse must never hand out an id that is still live.
      ASSERT_EQ(live.count(id), 0u);
      live[id] = RefEntry{t, order_counter++};
      ids.push_back(id);
    } else if (op < 8 && !live.empty()) {  // pop
      // Reference expectation: earliest (time, schedule order) among live.
      auto best = live.begin();
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->second.time < best->second.time ||
            (it->second.time == best->second.time &&
             it->second.order < best->second.order)) {
          best = it;
        }
      }
      ASSERT_FALSE(q.empty());
      auto fired = q.pop();
      EXPECT_EQ(fired.time, best->second.time);
      EXPECT_EQ(fired.id, best->first);
      live.erase(fired.id);
    } else if (!ids.empty()) {  // cancel a random id (may be dead already)
      const sim::EventId id = ids[rng.below(ids.size())];
      const bool was_live = live.count(id) > 0;
      EXPECT_EQ(q.cancel(id), was_live);
      live.erase(id);
    }
    ASSERT_EQ(q.size(), live.size());
  }
  // Drain; must come out in (time, schedule order) order.
  TimeUs last_t = -1;
  std::uint64_t last_order = 0;
  while (!q.empty()) {
    auto fired = q.pop();
    auto it = live.find(fired.id);
    ASSERT_NE(it, live.end());
    ASSERT_TRUE(fired.time > last_t ||
                (fired.time == last_t && it->second.order > last_order));
    last_t = fired.time;
    last_order = it->second.order;
    live.erase(it);
  }
  EXPECT_TRUE(live.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EventQueueFuzz,
    ::testing::ValuesIn(testutil::fuzz_seeds({1, 2, 3, 4, 5, 6, 7, 8})),
    testutil::seed_name);

// --- ProcessSet vs std::set reference ------------------------------------

class ProcessSetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProcessSetFuzz, MatchesReferenceModel) {
  SCOPED_TRACE(testutil::seed_trace(GetParam()));
  Rng rng(GetParam() * 7919);
  const int n = 1 + static_cast<int>(rng.below(150));
  ProcessSet s(n);
  std::set<ProcessId> ref;
  for (int step = 0; step < 2000; ++step) {
    const ProcessId p = static_cast<ProcessId>(rng.below(static_cast<std::uint64_t>(n)));
    switch (rng.below(3)) {
      case 0:
        s.add(p);
        ref.insert(p);
        break;
      case 1:
        s.remove(p);
        ref.erase(p);
        break;
      default:
        EXPECT_EQ(s.contains(p), ref.count(p) > 0);
        break;
    }
    ASSERT_EQ(s.size(), static_cast<int>(ref.size()));
  }
  // Full agreement at the end.
  const auto members = s.members();
  EXPECT_TRUE(std::equal(members.begin(), members.end(), ref.begin(),
                         ref.end()));
  EXPECT_EQ(s.first(), ref.empty() ? kNoProcess : *ref.begin());
  ProcessId expected_excluded = kNoProcess;
  for (ProcessId p = 0; p < n; ++p) {
    if (ref.count(p) == 0) {
      expected_excluded = p;
      break;
    }
  }
  EXPECT_EQ(s.first_excluded(), expected_excluded);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProcessSetFuzz,
    ::testing::ValuesIn(testutil::fuzz_seeds({11, 12, 13, 14, 15, 16})),
    testutil::seed_name);

// --- Scheduler timer storm ------------------------------------------------

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, EventsFireExactlyOnceInOrder) {
  SCOPED_TRACE(testutil::seed_trace(GetParam()));
  Rng rng(GetParam() * 104729);
  sim::Scheduler sched;
  int fired = 0;
  TimeUs last_fire_time = 0;
  int expected = 0;
  // Events recursively schedule more events, some cancel others.
  std::vector<sim::EventId> cancellable;
  std::function<void(int)> spawn = [&](int depth) {
    ++fired;
    EXPECT_GE(sched.now(), last_fire_time) << "time must be monotone";
    last_fire_time = sched.now();
    if (depth <= 0) return;
    const int children = static_cast<int>(rng.below(3));
    for (int c = 0; c < children; ++c) {
      ++expected;
      cancellable.push_back(
          sched.schedule_after(rng.range(1, 50), [&spawn, depth] {
            spawn(depth - 1);
          }));
    }
    if (!cancellable.empty() && rng.chance(0.2)) {
      // Cancel something (may already have fired; both fine, but the
      // expected count must track live cancellations).
      const auto idx = rng.below(cancellable.size());
      if (sched.cancel(cancellable[idx])) --expected;
      cancellable.erase(cancellable.begin() + static_cast<long>(idx));
    }
  };
  for (int i = 0; i < 20; ++i) {
    ++expected;
    sched.schedule_after(rng.range(0, 100), [&spawn] { spawn(4); });
  }
  sched.run();
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(sched.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SchedulerFuzz,
    ::testing::ValuesIn(testutil::fuzz_seeds({21, 22, 23, 24, 25})),
    testutil::seed_name);

}  // namespace
}  // namespace ecfd
