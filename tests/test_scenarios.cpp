// Deterministic unit coverage for the WAN/geo scenario pack: asymmetric
// per-link latency matrices, flapping links with duty cycles, gray
// failures (alive but slow), and bounded clock skew — each injector
// exercised directly, plus same-seed digest stability for the fuzz
// profiles that compose them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "check/fuzz.hpp"
#include "net/geo.hpp"
#include "net/protocol_ids.hpp"
#include "net/scenario.hpp"
#include "net/system.hpp"
#include "runtime/thread_env.hpp"

namespace ecfd {
namespace {

/// Stamps each received ping with the receiver's local arrival time.
class ArrivalLog final : public Protocol {
 public:
  explicit ArrivalLog(Env& env) : Protocol(env, protocol_ids::kTesting) {}

  void on_message(const Message& m) override {
    if (m.type == 1) arrivals.push_back(env_.now());
    (void)m;
  }

  void ping(ProcessId dst) {
    env_.send(dst, Message::make_empty(protocol_id(), 1, "test.ping"));
  }

  std::vector<TimeUs> arrivals;
};

std::vector<ArrivalLog*> install_logs(System& sys) {
  std::vector<ArrivalLog*> out;
  for (ProcessId p = 0; p < sys.n(); ++p) {
    out.push_back(&sys.host(p).emplace<ArrivalLog>());
  }
  return out;
}

// --- geo latency matrices -------------------------------------------------

TEST(Geo, PresetsAreValidAndNamed) {
  for (const std::string& name : geo_preset_names()) {
    const GeoSpec* spec = geo_preset(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_TRUE(spec->valid()) << name;
  }
  EXPECT_EQ(geo_preset("nonsense"), nullptr);
}

TEST(Geo, ScaledKeepsShapeAndScalesDelays) {
  const GeoSpec& g = *geo_preset("geo3");
  const GeoSpec half = g.scaled(50, 100);
  ASSERT_TRUE(half.valid());
  for (std::size_t i = 0; i < g.base.size(); ++i) {
    EXPECT_EQ(half.base[i], g.base[i] / 2);
    EXPECT_EQ(half.jitter[i], g.jitter[i] / 2);
  }
}

TEST(Geo, LinkDelaysStayInTheConfiguredBand) {
  Rng rng(1);
  GeoLink link(msec(38), msec(5));
  for (int i = 0; i < 1000; ++i) {
    auto d = link.sample_delay(0, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, msec(38));
    EXPECT_LE(*d, msec(43));
  }
}

TEST(Geo, RoutingIsAsymmetricPerDirection) {
  // geo3, n=3: p0/p1/p2 land in regions 0/1/2. One-way deliveries must sit
  // inside each direction's own [base, base+jitter] band — which differ
  // between p0->p1 (38 ms) and p1->p0 (42 ms).
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.seed = 11;
  cfg.links = LinkKind::kGeo;
  cfg.geo_preset_name = "geo3";
  auto sys = make_system(cfg);
  auto logs = install_logs(*sys);
  sys->start();

  const GeoSpec& g = *geo_preset("geo3");
  struct Probe {
    ProcessId src, dst;
  };
  for (const Probe pr : {Probe{0, 1}, Probe{1, 0}, Probe{0, 2}, Probe{2, 0}}) {
    const TimeUs sent = sys->now();
    logs[pr.src]->ping(pr.dst);
    sys->run_until(sent + msec(300));
    const auto& got = logs[pr.dst]->arrivals;
    ASSERT_EQ(got.size(), 1u) << "p" << pr.src << "->p" << pr.dst;
    const DurUs delay = got.back() - sent;
    EXPECT_GE(delay, g.base_delay(pr.src, pr.dst));
    EXPECT_LE(delay, g.base_delay(pr.src, pr.dst) + g.jitter_of(pr.src, pr.dst));
    logs[pr.dst]->arrivals.clear();
  }
}

TEST(Geo, CustomSpecTakesPrecedenceOverPreset) {
  ScenarioConfig cfg;
  cfg.n = 2;
  cfg.seed = 3;
  cfg.links = LinkKind::kGeo;
  cfg.geo_preset_name = "geo3";
  cfg.geo.regions = 1;
  cfg.geo.base = {msec(200)};
  cfg.geo.jitter = {0};
  auto sys = make_system(cfg);
  auto logs = install_logs(*sys);
  sys->start();
  logs[0]->ping(1);
  sys->run_until(msec(150));
  EXPECT_TRUE(logs[1]->arrivals.empty()) << "custom 200ms base ignored";
  sys->run_until(msec(250));
  ASSERT_EQ(logs[1]->arrivals.size(), 1u);
  EXPECT_EQ(logs[1]->arrivals[0], msec(200));
}

// --- flapping links -------------------------------------------------------

TEST(Flap, DutyCycleDropsDownPhaseAndHealsAtWindowEnd) {
  // p1 flaps with a 100 ms period, 50% duty, during [100ms, 500ms): pings
  // sent to it in a down phase vanish, pings in an up phase or after the
  // window arrive. Delays are pinned tiny so phase attribution is exact.
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.seed = 21;
  cfg.links = LinkKind::kReliable;
  cfg.min_delay = usec(10);
  cfg.max_delay = usec(20);
  auto sys = make_system(cfg);
  auto logs = install_logs(*sys);

  check::FaultSchedule schedule;
  check::FaultEvent e;
  e.kind = check::FaultEvent::Kind::kFlapWindow;
  e.process = 1;
  e.at = msec(100);
  e.until = msec(500);
  e.flap_period = msec(100);
  e.flap_up_ppm = 500'000;
  schedule.events.push_back(e);
  check::apply_schedule(*sys, schedule);

  sys->start();
  // The window starts with up [100,150), then down [150,200), repeating.
  struct Shot {
    TimeUs at;
    bool expect_delivered;
  };
  const std::vector<Shot> shots = {
      {msec(120), true},   // up phase
      {msec(170), false},  // down phase
      {msec(220), true},   // next period's up phase
      {msec(270), false},  // its down phase
      {msec(600), true},   // after the window: healed
  };
  for (const Shot s : shots) {
    sys->scheduler().schedule_at(s.at, [&logs] { logs[0]->ping(1); });
  }
  sys->run_until(sec(1));
  std::size_t expected = 0;
  for (const Shot s : shots) expected += s.expect_delivered ? 1u : 0u;
  EXPECT_EQ(logs[1]->arrivals.size(), expected);
  // And the flapped process's own sends die in the down phase too (the
  // flap blocks both directions).
  sys->scheduler().schedule_at(sec(1) + msec(10), [&logs] { logs[0]->ping(1); });
  sys->run_until(sec(2));
  EXPECT_EQ(logs[1]->arrivals.size(), expected + 1) << "still healed";
}

// --- gray failures --------------------------------------------------------

TEST(Gray, SlowProcessNeverMissesItsOwnSteps) {
  // A 4x gray host keeps firing its periodic timer — late, but never
  // skipped — and its sends still arrive (after the gray NIC holdback).
  System sys(2, 7);
  auto logs = install_logs(sys);
  sys.host(1).set_gray(4000, msec(5));
  EXPECT_TRUE(sys.host(1).gray());
  EXPECT_FALSE(sys.host(0).gray());

  int fires = 0;
  std::function<void()> step = [&] {
    ++fires;
    logs[1]->ping(0);
    if (fires < 10) sys.host(1).set_timer(msec(10), step);
  };
  sys.start();
  sys.host(1).set_timer(msec(10), step);
  sys.run_until(sec(2));

  EXPECT_EQ(fires, 10) << "gray means slow, not crashed";
  EXPECT_EQ(logs[0]->arrivals.size(), 10u);
  // 10 steps of a 10 ms timer at 4x stretch: the last fire lands at
  // ~400 ms, far beyond the healthy 100 ms schedule.
  EXPECT_GE(logs[0]->arrivals.back(), msec(400));
}

TEST(Gray, ClearingRestoresHealthyTiming) {
  System sys(2, 9);
  install_logs(sys);
  sys.host(0).set_gray(8000, msec(20));
  sys.host(0).set_gray(1000, 0);
  EXPECT_FALSE(sys.host(0).gray());
  sys.start();
  bool fired = false;
  sys.host(0).set_timer(msec(10), [&] { fired = true; });
  sys.run_until(msec(15));
  EXPECT_TRUE(fired) << "10 ms timer must fire on time once gray is cleared";
}

// --- clock skew -----------------------------------------------------------

TEST(Skew, ClockErrorStaysWithinTheDeclaredBound) {
  System sys(2, 13);
  install_logs(sys);
  // +15 ms offset plus fast drift, clamped to +-20 ms.
  sys.host(1).set_clock_skew(msec(15), 20'000, msec(20));
  sys.start();
  for (TimeUs t = msec(100); t <= sec(2); t += msec(100)) {
    sys.run_until(t);
    const std::int64_t err = sys.host(1).now() - sys.now();
    EXPECT_LE(err, msec(20)) << "at " << t;
    EXPECT_GE(err, -msec(20)) << "at " << t;
  }
  // Drift at 20000 ppm accumulates 2 ms per 100 ms: by 2 s the raw error
  // (15 + 40 ms) is far past the bound, so the clamp must be active.
  EXPECT_EQ(sys.host(1).clock_error(), msec(20));
  sys.host(1).clear_clock_skew();
  EXPECT_EQ(sys.host(1).clock_error(), 0);
}

TEST(Skew, DriftingClockFiresTimersEarly) {
  System sys(1, 17);
  install_logs(sys);
  // A clock 10% fast believes 100 ms elapsed after ~91 ms of real time.
  sys.host(0).set_clock_skew(0, 100'000, sec(1));
  sys.start();
  TimeUs fired_at = kTimeNever;
  sys.host(0).set_timer(msec(100), [&] { fired_at = sys.now(); });
  sys.run_until(sec(1));
  ASSERT_NE(fired_at, kTimeNever);
  EXPECT_LT(fired_at, msec(95));
  EXPECT_GE(fired_at, msec(85));
}

TEST(Skew, ThreadHostHonoursTheSameEnvelope) {
  runtime::ThreadSystem::Config cfg;
  cfg.n = 2;
  cfg.seed = 5;
  runtime::ThreadSystem sys(cfg);
  sys.host(1).set_clock_skew(msec(8), 50'000, msec(10));
  sys.host(1).set_gray(2000, 0);
  EXPECT_TRUE(sys.host(1).gray());
  sys.start();
  // Offset applies immediately; the clamp caps the drifted error at 10 ms
  // no matter how long we wait.
  const std::int64_t err = sys.host(1).clock_error();
  EXPECT_GE(err, msec(8));
  EXPECT_LE(err, msec(10));
  EXPECT_GE(sys.host(1).now(), sys.now());
  sys.host(1).clear_clock_skew();
  EXPECT_EQ(sys.host(1).clock_error(), 0);
}

// --- fuzz profile determinism --------------------------------------------

class WanProfile : public ::testing::TestWithParam<check::FuzzProfile> {};

TEST_P(WanProfile, SameSeedIsDigestIdenticalTwice) {
  check::FuzzCaseConfig cfg;
  cfg.profile = GetParam();
  cfg.seed = 42;
  const check::FuzzOutcome a = check::run_fuzz_case(cfg);
  const check::FuzzOutcome b = check::run_fuzz_case(cfg);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.sim_end, b.sim_end);
  EXPECT_TRUE(a.ok) << (a.violations.empty()
                            ? ""
                            : a.violations.front().property);
}

TEST_P(WanProfile, GeneratedSchedulesHonourTheirInvariants) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    check::FuzzCaseConfig cfg;
    cfg.profile = GetParam();
    cfg.seed = seed;
    const check::FaultSchedule s = check::generate_schedule(cfg);
    for (const check::FaultEvent& e : s.events) {
      switch (e.kind) {
        case check::FaultEvent::Kind::kGeoLatency:
          EXPECT_TRUE(e.geo.valid());
          break;
        case check::FaultEvent::Kind::kFlapWindow:
          EXPECT_LE(e.until, cfg.chaos_end);
          EXPECT_GT(e.flap_period, 0);
          EXPECT_LE(e.flap_up_ppm, 1'000'000u);
          break;
        case check::FaultEvent::Kind::kGrayWindow:
          EXPECT_LE(e.until, cfg.chaos_end);
          EXPECT_GE(e.gray_factor_milli, 1000u) << "gray means slower";
          break;
        case check::FaultEvent::Kind::kSkewWindow:
          EXPECT_LE(e.until, cfg.chaos_end);
          EXPECT_GT(e.skew_bound, 0) << "generated skew is always bounded";
          EXPECT_LE(e.skew_offset, e.skew_bound);
          EXPECT_GE(e.skew_offset, -e.skew_bound);
          break;
        case check::FaultEvent::Kind::kCrash:
          EXPECT_LE(e.at, cfg.chaos_end);
          break;
        default:
          ADD_FAILURE() << "unexpected event kind in a WAN profile";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WanPack, WanProfile,
                         ::testing::Values(check::FuzzProfile::kGeo,
                                           check::FuzzProfile::kFlap,
                                           check::FuzzProfile::kGray,
                                           check::FuzzProfile::kSkew),
                         [](const ::testing::TestParamInfo<check::FuzzProfile>&
                                info) {
                           return check::profile_name(info.param);
                         });

TEST(WanPackCatalogue, AllProfilesListsLanThenWan) {
  const auto& all = check::all_profiles();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0], check::FuzzProfile::kCrash);
  EXPECT_EQ(all[4], check::FuzzProfile::kGeo);
  for (const check::FuzzProfile p : all) {
    EXPECT_EQ(check::profile_from_name(check::profile_name(p)), p);
  }
}

}  // namespace
}  // namespace ecfd
