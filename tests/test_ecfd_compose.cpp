// Tests for the Section 3 constructions of ◇C from other classes.
#include "core/ecfd_compose.hpp"

#include <gtest/gtest.h>

#include "fd/heartbeat_p.hpp"
#include "fd/leader_candidate.hpp"
#include "fd/scripted_fd.hpp"
#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::run_fd_scenario;

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(250), msec(50));
}

// --- EcfdFromOmega (trivial construction) ------------------------------

TEST(EcfdFromOmega, SuspectsEveryoneExceptTrusted) {
  System sys(4, 1);
  std::vector<fd::ScriptedFd::Step> steps;
  steps.push_back({0, ProcessSet(4), 2});
  auto& omega = sys.host(1).emplace<fd::ScriptedFd>(steps);
  core::EcfdFromOmega c(4, /*self=*/1, &omega);
  sys.start();
  EXPECT_EQ(c.trusted(), 2);
  const ProcessSet s = c.suspected();
  EXPECT_FALSE(s.contains(2)) << "never the trusted process";
  EXPECT_FALSE(s.contains(1)) << "never self";
  EXPECT_TRUE(s.contains(0) && s.contains(3));
}

TEST(EcfdFromOmega, SatisfiesDefinition1OnRealOmega) {
  auto cfg = base_scenario(5, 2);
  cfg.with_crash(0, msec(400));
  auto install = [&cfg](ProcessHost& host, ProcessId p,
                        std::vector<std::shared_ptr<void>>& keepalive) {
    auto& lc = host.emplace<fd::LeaderCandidate>();
    auto adapter = std::make_shared<core::EcfdFromOmega>(cfg.n, p, &lc);
    keepalive.push_back(adapter);
    return testutil::OracleRefs{adapter.get(), adapter.get()};
  };
  auto res = run_fd_scenario(cfg, install, sec(8));
  EXPECT_TRUE(res.report.is_eventually_consistent());
  EXPECT_EQ(res.report.omega_leader, 1);
  // But the accuracy is the worst possible: strong accuracy fails because
  // correct non-leaders are suspected forever (the paper's point about the
  // poor accuracy of this construction).
  EXPECT_FALSE(res.report.eventual_strong_accuracy.holds);
}

// --- EcfdFromP ----------------------------------------------------------

TEST(EcfdFromP, TrustedIsFirstUnsuspected) {
  System sys(4, 1);
  ProcessSet susp(4);
  susp.add(0);
  susp.add(1);
  std::vector<fd::ScriptedFd::Step> steps;
  steps.push_back({0, susp, kNoProcess});
  auto& p_mod = sys.host(2).emplace<fd::ScriptedFd>(steps);
  core::EcfdFromP c(&p_mod);
  sys.start();
  EXPECT_EQ(c.trusted(), 2);
  EXPECT_EQ(c.suspected(), susp);
}

TEST(EcfdFromP, SatisfiesDefinition1OnRealHeartbeat) {
  auto cfg = base_scenario(5, 3);
  cfg.with_crash(0, msec(500)).with_crash(3, sec(1));
  auto install = [](ProcessHost& host, ProcessId,
                    std::vector<std::shared_ptr<void>>& keepalive) {
    auto& hb = host.emplace<fd::HeartbeatP>();
    auto adapter = std::make_shared<core::EcfdFromP>(&hb);
    keepalive.push_back(adapter);
    return testutil::OracleRefs{adapter.get(), adapter.get()};
  };
  auto res = run_fd_scenario(cfg, install, sec(8));
  EXPECT_TRUE(res.report.is_eventually_consistent());
  EXPECT_EQ(res.report.omega_leader, 1) << "first correct process";
  // From ◇P we even keep eventual strong accuracy — the best accuracy of
  // all the constructions.
  EXPECT_TRUE(res.report.eventual_strong_accuracy.holds);
}

// --- EcfdFromSAndOmega ----------------------------------------------------

TEST(EcfdFromSAndOmega, ErasesTrustedFromSuspectedSet) {
  System sys(4, 1);
  ProcessSet susp(4);
  susp.add(1);
  susp.add(3);
  std::vector<fd::ScriptedFd::Step> steps;
  steps.push_back({0, susp, /*trusted=*/3});  // inconsistent pair on purpose
  auto& mod = sys.host(0).emplace<fd::ScriptedFd>(steps);
  core::EcfdFromSAndOmega c(&mod, &mod);
  sys.start();
  EXPECT_EQ(c.trusted(), 3);
  EXPECT_FALSE(c.suspected().contains(3))
      << "Definition 1 clause 3 enforced at the adapter";
  EXPECT_TRUE(c.suspected().contains(1));
}

TEST(EcfdFromSAndOmega, ComposesHeartbeatAndLeaderCandidate) {
  auto cfg = base_scenario(5, 4);
  cfg.with_crash(0, msec(600));
  auto install = [](ProcessHost& host, ProcessId,
                    std::vector<std::shared_ptr<void>>& keepalive) {
    auto& hb = host.emplace<fd::HeartbeatP>();
    auto& lc = host.emplace<fd::LeaderCandidate>();
    auto adapter = std::make_shared<core::EcfdFromSAndOmega>(&hb, &lc);
    keepalive.push_back(adapter);
    return testutil::OracleRefs{adapter.get(), adapter.get()};
  };
  auto res = run_fd_scenario(cfg, install, sec(8));
  EXPECT_TRUE(res.report.is_eventually_consistent());
  EXPECT_EQ(res.report.omega_leader, 1);
}

}  // namespace
}  // namespace ecfd
