// Integration tests for the io_uring backend (src/transport/uring_env.*):
// uring<->uring and mixed poll<->uring loopback exchange (the two backends
// speak the same wire format, so a cluster can mix them), the coalescing
// counter contract, and the runtime fallback that makes `--backend uring`
// a request rather than a requirement. Every uring-dependent case SKIPs —
// not fails — where the kernel lacks io_uring (seccomp, old kernel,
// ECFD_URING=OFF builds), mirroring make_net_env's own degrade path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol_ids.hpp"
#include "transport/dgram_env.hpp"
#include "transport/socket_env.hpp"
#if defined(ECFD_URING)
#include "transport/uring_env.hpp"
#endif

namespace ecfd::transport {
namespace {

std::vector<PeerAddr> loopback_peers(int n, std::uint16_t base) {
  std::vector<PeerAddr> peers;
  for (int i = 0; i < n; ++i) {
    peers.push_back({"127.0.0.1", static_cast<std::uint16_t>(base + i)});
  }
  return peers;
}

DgramEnv::Options options(ProcessId self, const std::vector<PeerAddr>& peers,
                          bool coalesce = false) {
  DgramEnv::Options o;
  o.self = self;
  o.peers = peers;
  o.seed = 42;
  o.net.coalesce.enabled = coalesce;
  return o;
}

/// True when this kernel/build can actually open an io_uring env.
bool uring_works(std::uint16_t probe_port) {
#if defined(ECFD_URING)
  auto env = std::make_unique<UringEnv>(options(0, loopback_peers(1, probe_port)));
  return env->open(nullptr);
#else
  (void)probe_port;
  return false;
#endif
}

#define REQUIRE_URING(port)                                        \
  if (!uring_works(port)) {                                        \
    GTEST_SKIP() << "io_uring unavailable on this kernel/build";   \
  }

class Echo final : public Protocol {
 public:
  explicit Echo(Env& env) : Protocol(env, protocol_ids::kTesting) {}
  void on_message(const Message& m) override {
    if (m.type == 1) {
      ++pings;
      env_.send(m.src, Message::make_empty(protocol_id(), 2, "t.pong"));
    } else if (m.type == 2) {
      ++pongs;
    }
  }
  void ping(ProcessId dst) {
    env_.send(dst, Message::make_empty(protocol_id(), 1, "t.ping"));
  }
  int pings = 0;
  int pongs = 0;
};

/// Runs a's loop in this thread and b's in a helper until \p pred holds on
/// a (or the deadline passes); b's loop spins in short slices on an atomic
/// flag (stop() is loop-thread-only, so it cannot be used cross-thread).
void run_pair(DgramEnv& a, DgramEnv& b, const std::function<bool()>& pred,
              DurUs deadline = sec(5)) {
  std::atomic<bool> done{false};
  std::thread tb([&b, &done] {
    while (!done.load()) b.run_for(msec(10));
  });
  a.run_until(pred, deadline);
  done.store(true);
  tb.join();
}

TEST(UringEnv, PingPongOverUring) {
  REQUIRE_URING(24390);
#if defined(ECFD_URING)
  const auto peers = loopback_peers(2, 24300);
  UringEnv a(options(0, peers));
  UringEnv b(options(1, peers));
  std::string error;
  ASSERT_TRUE(a.open(&error)) << error;
  ASSERT_TRUE(b.open(&error)) << error;
  Echo& ea = a.emplace<Echo>();
  Echo& eb = b.emplace<Echo>();
  a.start();
  b.start();
  ea.ping(1);
  run_pair(a, b, [&] { return ea.pongs >= 1; });
  EXPECT_EQ(eb.pings, 1);
  EXPECT_EQ(ea.pongs, 1);
  // Counter contract is backend-independent: frames counted per peer.
  EXPECT_EQ(a.counters().get("net.sent.p1"), 1);
  EXPECT_EQ(a.counters().get("net.recv.p1"), 1);
  EXPECT_EQ(std::string(a.backend_name()), "uring");
#endif
}

TEST(UringEnv, InteropPollAndUringInOneCluster) {
  REQUIRE_URING(24391);
#if defined(ECFD_URING)
  // Node 0 runs poll(2), node 1 runs io_uring: same wire format, same
  // cluster. Both directions must deliver.
  const auto peers = loopback_peers(2, 24310);
  SocketEnv a(options(0, peers));
  UringEnv b(options(1, peers));
  std::string error;
  ASSERT_TRUE(a.open(&error)) << error;
  ASSERT_TRUE(b.open(&error)) << error;
  Echo& ea = a.emplace<Echo>();
  Echo& eb = b.emplace<Echo>();
  a.start();
  b.start();
  ea.ping(1);
  run_pair(a, b, [&] { return ea.pongs >= 1; });
  EXPECT_EQ(eb.pings, 1) << "poll -> uring direction failed";
  EXPECT_EQ(ea.pongs, 1) << "uring -> poll direction failed";
#endif
}

TEST(UringEnv, InteropCoalescedEnvelopesAcrossBackends) {
  REQUIRE_URING(24392);
#if defined(ECFD_URING)
  // A coalescing poll sender packs k frames into one envelope datagram;
  // the uring receiver must unpack all k (and vice versa via the pongs).
  const auto peers = loopback_peers(2, 24320);
  SocketEnv a(options(0, peers, /*coalesce=*/true));
  UringEnv b(options(1, peers, /*coalesce=*/true));
  std::string error;
  ASSERT_TRUE(a.open(&error)) << error;
  ASSERT_TRUE(b.open(&error)) << error;
  Echo& ea = a.emplace<Echo>();
  Echo& eb = b.emplace<Echo>();
  a.start();
  b.start();
  constexpr int kBurst = 10;
  for (int i = 0; i < kBurst; ++i) ea.ping(1);
  run_pair(a, b, [&] { return ea.pongs >= kBurst; });
  EXPECT_EQ(eb.pings, kBurst);
  EXPECT_EQ(ea.pongs, kBurst);
  // The counter contract under coalescing: frames stay frame-granular,
  // datagrams shrink, and the batch is visible in the envelope counter.
  EXPECT_EQ(a.counters().get("net.sent.p1"), kBurst);
  EXPECT_LT(a.counters().get("net.dgram_sent.p1"), kBurst);
  EXPECT_GE(a.counters().get("net.envelope_sent"), 1);
  EXPECT_GE(b.counters().get("net.envelope_recv"), 1);
  EXPECT_EQ(b.counters().get("net.envelope_decode_error"), 0);
#endif
}

TEST(NetBackendFactory, ParseBackendNames) {
  EXPECT_EQ(parse_backend("poll"), Backend::kPoll);
  EXPECT_EQ(parse_backend("uring"), Backend::kUring);
  EXPECT_FALSE(parse_backend("epoll").has_value());
  EXPECT_FALSE(parse_backend("").has_value());
}

TEST(NetBackendFactory, RuntimeFallbackToPollViaDisableEnv) {
  // ECFD_URING_DISABLE simulates "kernel without io_uring" end to end: the
  // factory must hand back a WORKING poll env and say so in the note —
  // never fail. This is the CI runtime-fallback smoke in library form.
  ASSERT_EQ(setenv("ECFD_URING_DISABLE", "1", 1), 0);
  std::string error;
  std::string note;
  auto env = make_net_env(Backend::kUring,
                          options(0, loopback_peers(1, 24330)), &error, &note);
  unsetenv("ECFD_URING_DISABLE");
  ASSERT_NE(env, nullptr) << error;
  EXPECT_EQ(std::string(env->backend_name()), "poll");
  EXPECT_NE(note.find("poll"), std::string::npos)
      << "fallback note should name the substitute backend: " << note;
}

TEST(NetBackendFactory, PollRequestNeverTouchesUring) {
  std::string error;
  std::string note;
  auto env = make_net_env(Backend::kPoll,
                          options(0, loopback_peers(1, 24331)), &error, &note);
  ASSERT_NE(env, nullptr) << error;
  EXPECT_EQ(std::string(env->backend_name()), "poll");
  EXPECT_TRUE(note.empty()) << note;
}

TEST(NetBackendFactory, UringRequestYieldsUringWhenAvailable) {
  REQUIRE_URING(24393);
  std::string error;
  std::string note;
  auto env = make_net_env(Backend::kUring,
                          options(0, loopback_peers(1, 24332)), &error, &note);
  ASSERT_NE(env, nullptr) << error;
  EXPECT_EQ(std::string(env->backend_name()), "uring");
  EXPECT_TRUE(note.empty()) << note;
}

}  // namespace
}  // namespace ecfd::transport
