// The replicated kv service end-to-end in the deterministic simulator:
// commit-and-replicate, leader redirects, lease-read fast path, retry
// dedup across a leader failover (the exactly-once guarantee), snapshot
// install-on-join for a partitioned-away replica, and the quiescent-log
// property that an idle cluster consumes no slots.
#include "kv/service.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ecfd_compose.hpp"
#include "fd/ring_fd.hpp"
#include "net/protocol_ids.hpp"
#include "net/scenario.hpp"
#include "scenario_util.hpp"

namespace ecfd::kv {
namespace {

using testutil::minority;

constexpr std::uint64_t kSess = 0x5E55;

struct Cluster {
  std::unique_ptr<System> sys;
  std::vector<std::unique_ptr<core::EcfdOracle>> oracles;
  std::vector<std::unique_ptr<core::LogReplica>> logs;
  std::vector<KvService*> services;
  /// Replies per host, in arrival order.
  std::map<int, std::vector<Reply>> replies;
};

// Heap-allocated: the reply sinks capture the cluster's address.
std::unique_ptr<Cluster> make_cluster(int n, std::uint64_t seed,
                                      int snapshot_every = 64) {
  auto c = std::make_unique<Cluster>();
  Cluster* cp = c.get();
  c->sys = make_system(testutil::partial_sync_scenario(n, seed));
  std::vector<fd::RingFd*> rings;
  for (ProcessId p = 0; p < n; ++p) {
    rings.push_back(&c->sys->host(p).emplace<fd::RingFd>());
  }
  for (ProcessId p = 0; p < n; ++p) {
    c->oracles.push_back(std::make_unique<core::EcfdFromRing>(rings[p]));
    core::LogReplica::Config lc;
    lc.capacity = 256;
    lc.pipeline_depth = 2;
    lc.quiescent = true;
    c->logs.push_back(std::make_unique<core::LogReplica>(
        c->sys->host(p), c->oracles.back().get(), lc));
    auto& rb = c->sys->host(p).emplace<broadcast::ReliableBroadcast>(
        protocol_ids::kKvBatchRb);
    KvService::Config kc;
    kc.batch_wait = msec(5);
    kc.lease_establish = msec(300);
    kc.gossip_every = msec(100);
    kc.snapshot_every = snapshot_every;
    auto& svc = c->sys->host(p).emplace<KvService>(
        c->oracles.back().get(), c->logs.back().get(), &rb, kc);
    const int host = p;
    svc.set_reply_sink([cp, host](KvService::Token, const Reply& r) {
      cp->replies[host].push_back(r);
    });
    c->services.push_back(&svc);
  }
  return c;
}

Request write_req(std::uint64_t tag, std::uint64_t seq, const std::string& key,
                  const std::string& value) {
  Request req;
  req.version = kProtoVersion;
  req.session = kSess;
  req.tag = tag;
  Op op;
  op.op = OpKind::kPut;
  op.seq = seq;
  op.key = key;
  op.value = value;
  req.ops.push_back(op);
  return req;
}

Request open_req(std::uint64_t tag) {
  Request req;
  req.version = kProtoVersion;
  req.session = kSess;
  req.tag = tag;
  Op op;
  op.op = OpKind::kOpenSession;
  req.ops.push_back(op);
  return req;
}

Request read_req(std::uint64_t tag, const std::string& key, bool lease) {
  Request req;
  req.version = kProtoVersion;
  req.flags = lease ? kFlagLeaseRead : 0;
  req.session = kSess;
  req.tag = tag;
  Op op;
  op.op = OpKind::kGet;
  op.key = key;
  req.ops.push_back(op);
  return req;
}

const Reply* reply_with_tag(const Cluster& c, int host, std::uint64_t tag) {
  auto it = c.replies.find(host);
  if (it == c.replies.end()) return nullptr;
  for (const Reply& r : it->second) {
    if (r.tag == tag) return &r;
  }
  return nullptr;
}

TEST(KvService, CommitsThroughConsensusAndReplicatesEverywhere) {
  auto c = make_cluster(3, 1);
  c->sys->start();
  c->sys->run_until(msec(400));  // FD stabilizes; p0 is the ring leader

  c->services[0]->handle_request(1, open_req(1));
  c->sys->run_until(msec(600));
  c->services[0]->handle_request(1, write_req(2, 1, "alpha", "one"));
  c->services[0]->handle_request(1, write_req(3, 2, "beta", "two"));
  c->sys->run_until(sec(2));

  for (std::uint64_t tag : {1u, 2u, 3u}) {
    const Reply* r = reply_with_tag(*c, 0, tag);
    ASSERT_NE(r, nullptr) << "tag " << tag;
    EXPECT_EQ(r->status, Status::kOk) << "tag " << tag;
  }
  // Every replica applied the same state.
  const std::uint64_t h = c->services[0]->store().content_hash();
  for (int p = 1; p < 3; ++p) {
    EXPECT_EQ(c->services[p]->store().content_hash(), h) << "replica " << p;
  }
  EXPECT_EQ(c->services[0]->store().read("alpha").value, "one");
}

TEST(KvService, NonLeaderRedirectsWithAHint) {
  auto c = make_cluster(3, 2);
  c->sys->start();
  c->sys->run_until(msec(400));

  c->services[1]->handle_request(7, write_req(1, 1, "k", "v"));
  const Reply* r = reply_with_tag(*c, 1, 1);
  ASSERT_NE(r, nullptr) << "redirect is synchronous";
  EXPECT_EQ(r->status, Status::kNotLeader);
  EXPECT_EQ(r->leader_hint, 0);
}

TEST(KvService, LeaseReadsSkipTheLogAndLogReadsDoNot) {
  auto c = make_cluster(3, 3);
  c->sys->start();
  c->sys->run_until(msec(600));  // > lease_establish: leader holds the lease
  ASSERT_TRUE(c->services[0]->lease_valid());

  c->services[0]->handle_request(1, open_req(1));
  c->services[0]->handle_request(1, write_req(2, 1, "k", "v"));
  c->sys->run_until(sec(2));
  const int slots_before = c->services[0]->applied_slot();

  // Lease read: answered synchronously, no new slot, no store log-read.
  c->services[0]->handle_request(1, read_req(3, "k", /*lease=*/true));
  const Reply* lease_reply = reply_with_tag(*c, 0, 3);
  ASSERT_NE(lease_reply, nullptr);
  EXPECT_EQ(lease_reply->status, Status::kOk);
  ASSERT_EQ(lease_reply->results.size(), 1u);
  EXPECT_EQ(lease_reply->results[0].value, "v");
  EXPECT_EQ(c->services[0]->store().stats().log_reads, 0);

  // Through-the-log read: consumes a slot and shows up in log_reads.
  c->services[0]->handle_request(1, read_req(4, "k", /*lease=*/false));
  c->sys->run_until(sec(3));
  const Reply* log_reply = reply_with_tag(*c, 0, 4);
  ASSERT_NE(log_reply, nullptr);
  EXPECT_EQ(log_reply->status, Status::kOk);
  EXPECT_EQ(log_reply->results[0].value, "v");
  EXPECT_GT(c->services[0]->store().stats().log_reads, 0);
  EXPECT_GT(c->services[0]->applied_slot(), slots_before);
}

TEST(KvService, RetriedWriteAcrossLeaderFailoverAppliesExactlyOnce) {
  auto c = make_cluster(3, 4);
  c->sys->start();
  c->sys->run_until(msec(400));

  c->services[0]->handle_request(1, open_req(1));
  c->sys->run_until(msec(700));
  c->services[0]->handle_request(1, write_req(2, 1, "key", "committed"));
  c->sys->run_until(sec(2));
  ASSERT_NE(reply_with_tag(*c, 0, 2), nullptr);
  ASSERT_EQ(reply_with_tag(*c, 0, 2)->status, Status::kOk);

  // The leader vanishes (partition looks like a crash). The client never
  // saw the ack, so it retries the SAME (session, seq) on the new leader.
  c->sys->network().partition(minority(3, 1));
  c->sys->run_until(sec(4));
  ASSERT_TRUE(c->services[1]->is_leader()) << "p1 took over";

  c->services[1]->handle_request(9, write_req(2, 1, "key", "committed"));
  c->sys->run_until(sec(6));

  const Reply* retry = reply_with_tag(*c, 1, 2);
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(retry->status, Status::kOk) << "retry acked, not re-applied";
  // Exactly-once: the retry was answered from the replicated dedup window
  // (no log slot burned — applied_slot is -1 on a cached reply) and the
  // write was applied exactly once.
  EXPECT_EQ(retry->applied_slot, -1);
  EXPECT_EQ(c->services[1]->store().stats().applied_writes, 1);
  EXPECT_EQ(c->services[1]->store().read("key").value, "committed");
  EXPECT_EQ(c->services[1]->store().session_last_seq(kSess), 1u);
}

TEST(KvService, PartitionedReplicaCatchesUpViaSnapshotInstall) {
  auto c = make_cluster(3, 5, /*snapshot_every=*/8);
  c->sys->start();
  c->sys->run_until(msec(400));

  // p2 misses everything from here on ({p0, p1} vs {p2}).
  c->sys->network().partition(minority(3, 2));
  c->sys->run_until(msec(600));

  c->services[0]->handle_request(1, open_req(1));
  c->sys->run_until(sec(1));
  // Enough separate batches to cross several snapshot boundaries.
  for (std::uint64_t q = 1; q <= 24; ++q) {
    c->services[0]->handle_request(
        1, write_req(1 + q, q, "key" + std::to_string(q), "v"));
    c->sys->run_until(sec(1) + msec(50 * static_cast<int>(q)));
  }
  c->sys->run_until(sec(4));
  ASSERT_EQ(c->services[0]->store().stats().applied_writes, 24);
  ASSERT_GT(c->logs[0]->compacted_upto(), 0) << "leader compacted its log";
  ASSERT_EQ(c->services[2]->applied_slot(), 0) << "p2 saw nothing";

  // Advance the compaction floor over the full run. Decide messages lost
  // to the partition are never retransmitted (RB is one-shot diffusion),
  // so everything the lagger missed must be covered by the snapshot.
  c->services[0]->snapshot_now();

  // Heal: watermark gossip exposes the lagger, snapshot chunks catch it
  // up past the compaction floor, and the log fast-forwards.
  c->sys->network().heal();
  c->sys->run_until(sec(10));

  EXPECT_EQ(c->services[2]->store().content_hash(),
            c->services[0]->store().content_hash());
  EXPECT_GE(c->logs[2]->applied_slots(), c->logs[0]->compacted_upto());
  EXPECT_GT(c->logs[2]->compacted_upto(), 0) << "installed, not replayed";
  // The installed session table keeps dedup working on the joiner.
  EXPECT_EQ(c->services[2]->store().session_last_seq(kSess), 24u);
}

TEST(KvService, IdleClusterConsumesNoSlots) {
  auto c = make_cluster(3, 6);
  c->sys->start();
  c->sys->run_until(sec(5));
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(c->logs[p]->applied_slots(), 0) << "replica " << p;
    EXPECT_EQ(c->services[p]->applied_slot(), 0) << "replica " << p;
  }
  // And the leader still established its lease (the lease path is driven
  // by the FD, not by log traffic).
  EXPECT_TRUE(c->services[0]->lease_valid());
}

}  // namespace
}  // namespace ecfd::kv
