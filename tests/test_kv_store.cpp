// The kv state machine in isolation: op semantics, session dedup windows
// (the exactly-once mechanism), snapshot images, and the content hash two
// replicas use to agree they applied the same prefix.
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ecfd::kv {
namespace {

constexpr std::uint64_t kSess = 0xABCD;

Cmd open_session(std::uint64_t id = kSess) {
  Cmd c;
  c.session = id;
  c.op = OpKind::kOpenSession;
  return c;
}

Cmd put(std::uint64_t seq, const std::string& key, const std::string& value,
        std::uint64_t session = kSess) {
  Cmd c;
  c.session = session;
  c.seq = seq;
  c.op = OpKind::kPut;
  c.key = key;
  c.value = value;
  return c;
}

Cmd get(const std::string& key) {
  Cmd c;
  c.session = kSess;
  c.op = OpKind::kGet;
  c.key = key;
  return c;
}

TEST(KvStore, PutGetDelCasSemantics) {
  KvStore s;
  EXPECT_EQ(s.apply(open_session()).status, Status::kOk);

  EXPECT_EQ(s.apply(put(1, "a", "1")).status, Status::kOk);
  EXPECT_EQ(s.apply(get("a")).value, "1");
  EXPECT_EQ(s.apply(get("missing")).status, Status::kNotFound);

  Cmd cas;
  cas.session = kSess;
  cas.seq = 2;
  cas.op = OpKind::kCas;
  cas.key = "a";
  cas.expected = "1";
  cas.value = "2";
  EXPECT_EQ(s.apply(cas).status, Status::kOk);
  EXPECT_EQ(s.apply(get("a")).value, "2");

  // Mismatched CAS reports the current value and changes nothing.
  cas.seq = 3;
  cas.expected = "stale";
  cas.value = "3";
  const OpResult r = s.apply(cas);
  EXPECT_EQ(r.status, Status::kCasMismatch);
  EXPECT_EQ(r.value, "2");
  EXPECT_EQ(s.apply(get("a")).value, "2");

  Cmd del;
  del.session = kSess;
  del.seq = 4;
  del.op = OpKind::kDel;
  del.key = "a";
  EXPECT_EQ(s.apply(del).status, Status::kOk);
  EXPECT_EQ(s.apply(get("a")).status, Status::kNotFound);
}

TEST(KvStore, WritesRequireASession) {
  KvStore s;
  EXPECT_EQ(s.apply(put(1, "k", "v")).status, Status::kNoSession);
  EXPECT_EQ(s.size(), 0u);
  // Reads don't.
  EXPECT_EQ(s.apply(get("k")).status, Status::kNotFound);
}

TEST(KvStore, RetriedWriteAppliesOnceAndReturnsTheCachedResult) {
  KvStore s;
  s.apply(open_session());
  EXPECT_EQ(s.apply(put(1, "k", "first")).status, Status::kOk);
  EXPECT_EQ(s.apply(put(2, "k", "second")).status, Status::kOk);

  // A retry of seq 1 (leader died before acking) must NOT clobber seq 2's
  // effect — it returns what seq 1 returned the first time.
  EXPECT_EQ(s.apply(put(1, "k", "first")).status, Status::kOk);
  EXPECT_EQ(s.apply(get("k")).value, "second");
  EXPECT_EQ(s.stats().applied_writes, 2);
  EXPECT_EQ(s.stats().dedup_hits, 1);

  // cached() exposes the same window to the service layer.
  ASSERT_TRUE(s.cached(kSess, 2).has_value());
  EXPECT_EQ(s.cached(kSess, 2)->status, Status::kOk);
  EXPECT_FALSE(s.cached(kSess, 99).has_value());
}

TEST(KvStore, SequenceGapsAreRejected) {
  KvStore s;
  s.apply(open_session());
  EXPECT_EQ(s.apply(put(1, "k", "v")).status, Status::kOk);
  EXPECT_EQ(s.apply(put(3, "k", "vv")).status, Status::kOutOfOrder);
  EXPECT_EQ(s.session_last_seq(kSess), 1u);
  EXPECT_EQ(s.stats().out_of_order, 1);
}

TEST(KvStore, DedupWindowIsBounded) {
  KvStore s{KvStore::Config{.dedup_window = 4}};
  s.apply(open_session());
  for (std::uint64_t q = 1; q <= 10; ++q) {
    EXPECT_EQ(s.apply(put(q, "k" + std::to_string(q), "v")).status,
              Status::kOk);
  }
  // Recent seqs still answered from the window; evicted ones are not.
  EXPECT_TRUE(s.cached(kSess, 10).has_value());
  EXPECT_TRUE(s.cached(kSess, 7).has_value());
  EXPECT_FALSE(s.cached(kSess, 6).has_value());
  // A retry that fell off the window is treated as out-of-order rather
  // than re-applied.
  EXPECT_EQ(s.apply(put(6, "k6", "other")).status, Status::kOutOfOrder);
  EXPECT_EQ(s.apply(get("k6")).value, "v");
}

TEST(KvStore, SerializeRoundTripPreservesStateAndSessions) {
  KvStore a;
  a.apply(open_session(7));
  a.apply(open_session(8));
  for (std::uint64_t q = 1; q <= 5; ++q) {
    a.apply(put(q, "key" + std::to_string(q), std::string(100, 'x'), 7));
  }
  a.apply(put(1, "other", "y", 8));

  const std::vector<std::uint8_t> image = a.serialize();
  KvStore b;
  std::string error;
  ASSERT_TRUE(b.deserialize(image, &error)) << error;

  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.session_count(), 2u);
  EXPECT_EQ(b.content_hash(), a.content_hash());
  // The restored session window still dedups: a retry of seq 5 must not
  // re-apply on the replica that installed the snapshot.
  EXPECT_EQ(b.apply(put(5, "key5", "clobber", 7)).status, Status::kOk);
  EXPECT_EQ(b.apply(get("key5")).value, std::string(100, 'x'));
  // And the next fresh seq applies normally.
  EXPECT_EQ(b.apply(put(6, "new", "n", 7)).status, Status::kOk);
}

TEST(KvStore, DeserializeRejectsCorruptImagesWithoutChangingState) {
  KvStore a;
  a.apply(open_session());
  a.apply(put(1, "k", "v"));
  auto image = a.serialize();

  KvStore b;
  b.apply(open_session(42));
  const std::uint64_t before = b.content_hash();

  // Truncations at every length must fail cleanly.
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(b.deserialize(image.data(), len)) << "length " << len;
  }
  // Bad magic.
  auto bad = image;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(b.deserialize(bad));
  // Trailing garbage.
  bad = image;
  bad.push_back(0);
  EXPECT_FALSE(b.deserialize(bad));

  EXPECT_EQ(b.content_hash(), before) << "failed install must not mutate";
}

TEST(KvStore, ContentHashDetectsDivergence) {
  KvStore a;
  KvStore b;
  a.apply(open_session());
  b.apply(open_session());
  a.apply(put(1, "k", "v1"));
  b.apply(put(1, "k", "v2"));
  EXPECT_NE(a.content_hash(), b.content_hash());

  // Same commands, same order -> same hash.
  KvStore c;
  c.apply(open_session());
  c.apply(put(1, "k", "v1"));
  EXPECT_EQ(a.content_hash(), c.content_hash());
}

TEST(KvStore, CloseSessionForgetsTheWindow) {
  KvStore s;
  s.apply(open_session());
  s.apply(put(1, "k", "v"));
  Cmd close;
  close.session = kSess;
  close.op = OpKind::kCloseSession;
  EXPECT_EQ(s.apply(close).status, Status::kOk);
  EXPECT_FALSE(s.has_session(kSess));
  // The data outlives the session; only the dedup state is gone.
  EXPECT_EQ(s.apply(get("k")).value, "v");
}

}  // namespace
}  // namespace ecfd::kv
