// Tests for the detector-class transformations of Section 3:
//   * WToS      — weak completeness -> strong completeness (Chandra-Toueg)
//   * OmegaFromS — ◇S -> Omega (suspicion-penalty reduction)
#include "fd/omega_from_s.hpp"
#include "fd/scripted_fd.hpp"
#include "fd/w_to_s.hpp"

#include <gtest/gtest.h>

#include "fd/heartbeat_p.hpp"
#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::run_fd_scenario;

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(200), msec(40));
}

// --- WToS ------------------------------------------------------------

TEST(WToS, SpreadsASingleWitnessSuspicionToEveryone) {
  // Input: weakly complete scripted detector — only p0 ever suspects the
  // crashed p3. The transformation must give strong completeness.
  const int n = 4;
  auto cfg = base_scenario(n, 1);
  cfg.with_crash(3, msec(300));

  auto install = [n](ProcessHost& host, ProcessId p,
                     std::vector<std::shared_ptr<void>>&) {
    ProcessSet none(n);
    ProcessSet p3(n);
    p3.add(3);
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, none, 0});
    if (p == 0) steps.push_back({msec(400), p3, 0});
    auto& in = host.emplace<fd::ScriptedFd>(steps);
    auto& out = host.emplace<fd::WToS>(&in);
    return testutil::OracleRefs{&out, nullptr};
  };

  auto res = run_fd_scenario(cfg, install, sec(4));
  EXPECT_TRUE(res.report.strong_completeness.holds)
      << "from=" << res.report.strong_completeness.from;
  // Nothing false is introduced: accuracy intact.
  EXPECT_TRUE(res.report.eventual_strong_accuracy.holds);
}

TEST(WToS, GossipedFalseSuspicionIsClearedByTheVictim) {
  // p0 falsely suspects p2 for a while, then stops. After p0 stops
  // gossiping it and p2's own broadcasts keep clearing it, nobody should
  // suspect p2 anymore.
  const int n = 4;
  auto cfg = base_scenario(n, 2);

  auto install = [n](ProcessHost& host, ProcessId p,
                     std::vector<std::shared_ptr<void>>&) {
    ProcessSet none(n);
    ProcessSet p2(n);
    p2.add(2);
    std::vector<fd::ScriptedFd::Step> steps;
    if (p == 0) {
      steps.push_back({0, p2, 0});          // mistake...
      steps.push_back({msec(500), none, 0}); // ...retracted
    } else {
      steps.push_back({0, none, 0});
    }
    auto& in = host.emplace<fd::ScriptedFd>(steps);
    auto& out = host.emplace<fd::WToS>(&in);
    return testutil::OracleRefs{&out, nullptr};
  };

  auto res = run_fd_scenario(cfg, install, sec(4));
  EXPECT_TRUE(res.report.eventual_strong_accuracy.holds)
      << "stale gossiped suspicion must wash out";
}

TEST(WToS, PerpetualInputMistakeDoesNotStickAtTheOutput) {
  // Even if the input permanently suspects correct p2, p2's own periodic
  // broadcasts keep clearing it at every receiver (including at p0, whose
  // local merge re-adds it between broadcasts). The output therefore only
  // flaps — a correct process is never *permanently* suspected, so the
  // eventual accuracy properties survive at the output, and the alive
  // witness p1/p3 certainly remains available for ◇S.
  const int n = 4;
  auto cfg = base_scenario(n, 3);

  auto install = [n](ProcessHost& host, ProcessId p,
                     std::vector<std::shared_ptr<void>>&) {
    ProcessSet none(n);
    ProcessSet p2(n);
    p2.add(2);
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, p == 0 ? p2 : none, 0});
    auto& in = host.emplace<fd::ScriptedFd>(steps);
    auto& out = host.emplace<fd::WToS>(&in);
    return testutil::OracleRefs{&out, nullptr};
  };

  auto res = run_fd_scenario(cfg, install, sec(4));
  EXPECT_TRUE(res.report.eventual_weak_accuracy.holds);
}

TEST(WToS, OnRealHeartbeatInputStaysEventuallyPerfect) {
  auto cfg = base_scenario(5, 4);
  cfg.with_crash(2, msec(500));
  auto install = [](ProcessHost& host, ProcessId,
                    std::vector<std::shared_ptr<void>>&) {
    auto& in = host.emplace<fd::HeartbeatP>();
    auto& out = host.emplace<fd::WToS>(&in);
    return testutil::OracleRefs{&out, nullptr};
  };
  auto res = run_fd_scenario(cfg, install, sec(6));
  EXPECT_TRUE(res.report.is_eventually_perfect());
}

// --- OmegaFromS --------------------------------------------------------

TEST(OmegaFromS, ConvergesToTheNeverSuspectedProcess) {
  // Scripted ◇S input whose eventual-weak-accuracy witness is p2 (not the
  // lowest id): everyone eventually suspects everyone except p2.
  const int n = 4;
  auto cfg = base_scenario(n, 5);

  auto install = [n](ProcessHost& host, ProcessId p,
                     std::vector<std::shared_ptr<void>>&) {
    ProcessSet all_but_p2 = ProcessSet::full(n);
    all_but_p2.remove(2);
    all_but_p2.remove(p);
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, all_but_p2, 0});
    auto& in = host.emplace<fd::ScriptedFd>(steps);
    auto& omega = host.emplace<fd::OmegaFromS>(&in);
    return testutil::OracleRefs{nullptr, &omega};
  };

  auto res = run_fd_scenario(cfg, install, sec(4));
  EXPECT_TRUE(res.report.omega.holds);
  EXPECT_EQ(res.report.omega_leader, 2)
      << "the penalty argmin must settle on the unsuspected process";
}

TEST(OmegaFromS, OnRealHeartbeatElectsFirstCorrect) {
  auto cfg = base_scenario(5, 6);
  cfg.with_crash(0, msec(400));
  auto install = [](ProcessHost& host, ProcessId,
                    std::vector<std::shared_ptr<void>>&) {
    auto& in = host.emplace<fd::HeartbeatP>();
    auto& omega = host.emplace<fd::OmegaFromS>(&in);
    return testutil::OracleRefs{&in, &omega};
  };
  auto res = run_fd_scenario(cfg, install, sec(8));
  EXPECT_TRUE(res.report.omega.holds);
  // With a clean ◇P input, the crashed p0 accumulates penalty forever; any
  // correct process can win, but it must be correct and common. With ties
  // broken by id, p1 is the expected winner.
  EXPECT_EQ(res.report.omega_leader, 1);
  EXPECT_TRUE(res.report.is_eventually_consistent())
      << "heartbeat sets + derived leader compose into ◇C";
}

TEST(OmegaFromS, PenaltyOfCrashedProcessKeepsGrowing) {
  const int n = 3;
  auto cfg = base_scenario(n, 7);
  cfg.with_crash(2, msec(300));
  auto sys = make_system(cfg);
  std::vector<fd::OmegaFromS*> omegas;
  for (ProcessId p = 0; p < n; ++p) {
    auto& in = sys->host(p).emplace<fd::HeartbeatP>();
    omegas.push_back(&sys->host(p).emplace<fd::OmegaFromS>(&in));
  }
  sys->start();
  sys->run_until(sec(2));
  const auto mid = omegas[0]->penalty(2);
  sys->run_until(sec(4));
  const auto late = omegas[0]->penalty(2);
  EXPECT_GT(mid, 0u);
  EXPECT_GT(late, mid);
  EXPECT_LT(omegas[0]->penalty(1), mid) << "correct p1 stays cheap";
}

}  // namespace
}  // namespace ecfd
