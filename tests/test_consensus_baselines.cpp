// Tests for the two baseline consensus algorithms (Chandra-Toueg ◇S and
// the MR-style Omega baseline) plus the paper's comparative claims.
#include <gtest/gtest.h>

#include "consensus/harness.hpp"

namespace ecfd::consensus {
namespace {

HarnessConfig base(int n, std::uint64_t seed) {
  HarnessConfig cfg;
  cfg.scenario.n = n;
  cfg.scenario.seed = seed;
  cfg.scenario.links = LinkKind::kPartialSync;
  cfg.scenario.gst = msec(200);
  cfg.scenario.delta = msec(5);
  cfg.scenario.pre_gst_max = msec(50);
  cfg.fd = FdStack::kScriptedStable;
  return cfg;
}

void expect_all_good(const HarnessResult& r, const char* what) {
  EXPECT_TRUE(r.every_correct_decided) << what << ": " << summarize(r);
  EXPECT_TRUE(r.uniform_agreement) << what << ": " << summarize(r);
  EXPECT_TRUE(r.validity) << what << ": " << summarize(r);
}

// --- Chandra-Toueg ------------------------------------------------------

TEST(ChandraToueg, DecidesFailureFree) {
  auto cfg = base(5, 1);
  cfg.algo = Algo::kChandraTouegS;
  cfg.fd_stable_at = 0;
  auto r = run_consensus(cfg);
  expect_all_good(r, "CT stable");
  EXPECT_EQ(r.max_decision_round, 1) << "round-1 coordinator p0 unsuspected";
}

TEST(ChandraToueg, DecidesWithCrashes) {
  auto cfg = base(5, 2);
  cfg.algo = Algo::kChandraTouegS;
  cfg.scenario.with_crash(0, msec(100)).with_crash(1, msec(150));
  cfg.fd_stable_at = msec(300);
  auto r = run_consensus(cfg);
  expect_all_good(r, "CT crashes");
}

TEST(ChandraToueg, DecidesWithRealHeartbeatFd) {
  auto cfg = base(5, 3);
  cfg.algo = Algo::kChandraTouegS;
  cfg.fd = FdStack::kHeartbeatP;
  cfg.scenario.with_crash(2, msec(250));
  auto r = run_consensus(cfg);
  expect_all_good(r, "CT heartbeat");
}

TEST(ChandraToueg, RotationPaysForDistantLeader) {
  // Theorem 3's contrast: EWA-only detector whose witness is p_k. CT must
  // grind through the rounds of suspected coordinators; ◇C goes straight
  // to the leader.
  const ProcessId k = 4;  // leader is the LAST process in rotation order
  auto ct_cfg = base(5, 4);
  ct_cfg.algo = Algo::kChandraTouegS;
  ct_cfg.scripted_ewa_only = true;
  ct_cfg.scripted_leader = k;
  ct_cfg.fd_stable_at = 0;
  auto ct = run_consensus(ct_cfg);
  expect_all_good(ct, "CT ewa-only");
  EXPECT_GE(ct.max_decision_round, static_cast<int>(k + 1))
      << "rotation cannot decide before the leader's turn";

  auto c_cfg = ct_cfg;
  c_cfg.algo = Algo::kEcfdC;
  auto c = run_consensus(c_cfg);
  expect_all_good(c, "◇C ewa-only");
  EXPECT_EQ(c.max_decision_round, 1);
}

// --- MR-style Omega baseline -------------------------------------------

TEST(MrOmega, DecidesFailureFree) {
  auto cfg = base(5, 5);
  cfg.algo = Algo::kMrOmega;
  cfg.fd_stable_at = 0;
  auto r = run_consensus(cfg);
  expect_all_good(r, "MR stable");
  EXPECT_EQ(r.max_decision_round, 1) << "leader-based: one round in stability";
}

TEST(MrOmega, DecidesWithCrashes) {
  auto cfg = base(5, 6);
  cfg.algo = Algo::kMrOmega;
  cfg.scenario.with_crash(0, msec(120)).with_crash(2, msec(240));
  cfg.fd_stable_at = msec(350);
  auto r = run_consensus(cfg);
  expect_all_good(r, "MR crashes");
}

TEST(MrOmega, DecidesWithRealLeaderCandidateOmega) {
  auto cfg = base(5, 7);
  cfg.algo = Algo::kMrOmega;
  cfg.fd = FdStack::kOmegaPlusHeartbeat;  // MR uses only its leader output
  cfg.scenario.with_crash(4, msec(250));
  auto r = run_consensus(cfg);
  expect_all_good(r, "MR real omega");
}

TEST(MrOmega, QuadraticMessagePattern) {
  // Each round of the merged layout scatters estimates to everyone:
  // Θ(n²) versus the ◇C algorithm's Θ(n).
  auto mr = base(7, 8);
  mr.algo = Algo::kMrOmega;
  mr.fd_stable_at = 0;
  auto rm = run_consensus(mr);
  expect_all_good(rm, "MR msgs");

  auto c = base(7, 8);
  c.algo = Algo::kEcfdC;
  c.fd_stable_at = 0;
  auto rc = run_consensus(c);
  expect_all_good(rc, "C msgs");

  EXPECT_GT(rm.consensus_msgs, 2 * rc.consensus_msgs)
      << "MR=" << rm.consensus_msgs << " C=" << rc.consensus_msgs;
}

}  // namespace
}  // namespace ecfd::consensus
