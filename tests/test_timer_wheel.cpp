// Unit tests for the hierarchical timer wheel backing the sharded threaded
// runtime. The wheel is single-threaded by design, so these tests drive it
// directly with synthetic clocks — no threads, fully deterministic.
#include "runtime/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ecfd::runtime {
namespace {

struct Fired {
  TimeUs at;
  int tag;
};

class WheelFixture : public ::testing::Test {
 public:
  TimerWheel wheel_{0};
  std::vector<Fired> fired_;
  TimeUs now_{0};

  void advance_to(TimeUs t) {
    now_ = t;
    wheel_.advance(t, [this](std::uint32_t, TimerWheel::Kind,
                             sim::InplaceAction& fn) { fn(); });
  }

  WheelHandle arm(TimeUs when, int tag) {
    return wheel_.schedule(when, 0, TimerWheel::Kind::kTimer,
                           sim::InplaceAction([this, tag]() {
                             fired_.push_back(Fired{now_, tag});
                           }));
  }
};

TEST_F(WheelFixture, FiresInDeadlineOrderNeverEarly) {
  arm(usec(500), 1);
  arm(usec(100), 2);
  arm(msec(3), 3);
  advance_to(usec(99));
  EXPECT_TRUE(fired_.empty());  // nothing due yet
  advance_to(msec(10));
  ASSERT_EQ(fired_.size(), 3u);
  EXPECT_EQ(fired_[0].tag, 2);
  EXPECT_EQ(fired_[1].tag, 1);
  EXPECT_EQ(fired_[2].tag, 3);
  EXPECT_EQ(wheel_.size(), 0u);
}

TEST_F(WheelFixture, DeadlinesRoundUpToTickBoundaries) {
  // An action must never run before its deadline: 65us rounds up to the
  // 128us tick boundary, not down to 64us.
  arm(usec(65), 1);
  advance_to(usec(127));
  EXPECT_TRUE(fired_.empty());
  advance_to(usec(128));
  ASSERT_EQ(fired_.size(), 1u);
}

TEST_F(WheelFixture, PastDeadlinesFireOnNextTick) {
  advance_to(msec(1));
  arm(usec(0), 1);  // long past
  advance_to(msec(1) + TimerWheel::kTickUs);
  EXPECT_EQ(fired_.size(), 1u);
}

TEST_F(WheelFixture, CancelPreventsFiringAndFreesTheSlot) {
  const WheelHandle h = arm(msec(1), 1);
  EXPECT_EQ(wheel_.size(), 1u);
  EXPECT_TRUE(wheel_.cancel(h));
  EXPECT_EQ(wheel_.size(), 0u);
  EXPECT_FALSE(wheel_.cancel(h));  // second cancel: stale
  advance_to(msec(5));
  EXPECT_TRUE(fired_.empty());
}

TEST_F(WheelFixture, CancelOfFiredHandleIsStale) {
  const WheelHandle h = arm(usec(100), 1);
  advance_to(msec(1));
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_FALSE(wheel_.cancel(h));
  // The slot is recycled; the old generation must not cancel the new entry.
  const WheelHandle h2 = arm(msec(2), 2);
  EXPECT_NE(h, h2);
  EXPECT_FALSE(wheel_.cancel(h));
  advance_to(msec(5));
  ASSERT_EQ(fired_.size(), 2u);
  EXPECT_EQ(fired_[1].tag, 2);
}

TEST_F(WheelFixture, RearmFromInsideCallbackKeepsPeriod) {
  struct Periodic {
    WheelFixture* fix;
    int remaining;
    void tick() {
      fix->fired_.push_back(Fired{fix->now_, 9});
      if (--remaining > 0) {
        fix->wheel_.schedule(fix->now_ + msec(1), 0, TimerWheel::Kind::kTimer,
                             sim::InplaceAction([this]() { tick(); }));
      }
    }
  };
  Periodic p{this, 4};
  wheel_.schedule(msec(1), 0, TimerWheel::Kind::kTimer,
                  sim::InplaceAction([&p]() { p.tick(); }));
  for (TimeUs t = usec(100); t <= msec(10); t += usec(100)) advance_to(t);
  EXPECT_EQ(fired_.size(), 4u);
  for (std::size_t i = 1; i < fired_.size(); ++i) {
    EXPECT_GE(fired_[i].at - fired_[i - 1].at, msec(1) - TimerWheel::kTickUs);
  }
  EXPECT_EQ(wheel_.size(), 0u);
}

TEST_F(WheelFixture, CancelSiblingDueSameTickFromCallback) {
  // Two entries land on the same tick; the one that runs first cancels its
  // sibling, which therefore must not run even though it was already due.
  // Slot chains run newest-first, so the canceller is armed last.
  const WheelHandle victim = arm(msec(1), 2);
  wheel_.schedule(msec(1), 0, TimerWheel::Kind::kTimer,
                  sim::InplaceAction([this, victim]() {
                    fired_.push_back(Fired{now_, 1});
                    EXPECT_TRUE(wheel_.cancel(victim));
                  }));
  advance_to(msec(2));
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0].tag, 1);
  EXPECT_EQ(wheel_.size(), 0u);
}

TEST_F(WheelFixture, SelfCancelFromOwnCallbackReportsTooLate) {
  WheelHandle self = kInvalidWheelHandle;
  self = wheel_.schedule(msec(1), 0, TimerWheel::Kind::kTimer,
                         sim::InplaceAction([this, &self]() {
                           fired_.push_back(Fired{now_, 1});
                           EXPECT_FALSE(wheel_.cancel(self));
                         }));
  advance_to(msec(2));
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(wheel_.size(), 0u);
}

TEST_F(WheelFixture, LongDelaysCrossCascadeBoundaries) {
  // One entry per level: 1ms (level 0), 100ms (level 1), 2s (level 2),
  // 5min (level 3) — each must fire within one tick of its deadline.
  const TimeUs deadlines[] = {msec(1), msec(100), sec(2), sec(300)};
  int tag = 0;
  for (TimeUs d : deadlines) arm(d, tag++);
  TimeUs t = 0;
  while (fired_.size() < 4 && t < sec(301)) {
    t += msec(250);
    advance_to(t);
  }
  ASSERT_EQ(fired_.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fired_[static_cast<std::size_t>(i)].tag, i);
    EXPECT_GE(fired_[static_cast<std::size_t>(i)].at, deadlines[i]);
    EXPECT_LE(fired_[static_cast<std::size_t>(i)].at,
              deadlines[i] + msec(250) + TimerWheel::kTickUs);
  }
}

TEST_F(WheelFixture, BeyondHorizonEntriesParkAndStillFire) {
  // 30 minutes exceeds the 64us * 64^4 ≈ 17.9min horizon; the entry parks
  // in the top level and re-cascades until its true deadline fits.
  arm(sec(1800), 1);
  advance_to(sec(1799));
  EXPECT_TRUE(fired_.empty());
  advance_to(sec(1801));
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_GE(fired_[0].at, sec(1800));
}

TEST_F(WheelFixture, NextDueIsSafeAndProductive) {
  // next_due() must never be later than the earliest deadline (safe to
  // sleep until), and advancing to it repeatedly must reach the deadline
  // (productive, no livelock short of it).
  arm(usec(300), 1);
  arm(msec(7), 2);
  arm(sec(3), 3);
  int safety = 0;
  while (wheel_.size() > 0) {
    const TimeUs due = wheel_.next_due();
    ASSERT_NE(due, kTimeNever);
    ASSERT_GT(due, now_);
    advance_to(due);
    ASSERT_LT(++safety, 1 << 20);
  }
  ASSERT_EQ(fired_.size(), 3u);
  EXPECT_EQ(fired_[0].tag, 1);
  EXPECT_GE(fired_[0].at, usec(300));
  EXPECT_LE(fired_[0].at, usec(300) + TimerWheel::kTickUs);
  EXPECT_GE(fired_[1].at, msec(7));
  EXPECT_LE(fired_[1].at, msec(7) + TimerWheel::kTickUs);
  EXPECT_GE(fired_[2].at, sec(3));
  EXPECT_LE(fired_[2].at, sec(3) + TimerWheel::kTickUs);
  EXPECT_EQ(wheel_.next_due(), kTimeNever);
}

TEST_F(WheelFixture, ManyEntriesSameTickAllFire) {
  for (int i = 0; i < 1000; ++i) arm(msec(2), i);
  EXPECT_EQ(wheel_.size(), 1000u);
  advance_to(msec(3));
  ASSERT_EQ(fired_.size(), 1000u);
  std::vector<int> tags;
  tags.reserve(fired_.size());
  for (const Fired& f : fired_) tags.push_back(f.tag);
  std::sort(tags.begin(), tags.end());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(tags[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(wheel_.size(), 0u);
}

TEST_F(WheelFixture, ChurnReusesSlotsWithoutGrowth) {
  // Steady schedule/cancel/fire churn must stay within the slab grown for
  // the peak working set: handles stay valid, accounting stays exact.
  std::vector<WheelHandle> live;
  TimeUs t = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 8; ++i) live.push_back(arm(t + msec(1 + i), i));
    // Cancel half of what we just armed.
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(wheel_.cancel(live[live.size() - 1 - 2 * i]));
    }
    t += msec(2);
    advance_to(t);
  }
  advance_to(t + msec(20));
  EXPECT_EQ(wheel_.size(), 0u);
  // 200 rounds * 4 survivors, each fired exactly once.
  EXPECT_EQ(fired_.size(), 800u);
}

}  // namespace
}  // namespace ecfd::runtime
