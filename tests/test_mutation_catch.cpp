// Mutation tests for the property monitors: each deliberately broken
// FD / consensus variant (check/mutants.hpp) must be flagged by exactly
// the property it breaks, with a concrete witness. This is the evidence
// that the monitors detect real violations rather than vacuously passing.
//
// Also covers the fuzz tooling the monitors feed: greedy schedule
// shrinking and the ecfd.repro.v1 round trip (parse(to_text(r)) == r and
// replay reproduces the recorded digest bit for bit).
#include <gtest/gtest.h>

#include <cstdio>

#include "check/fuzz.hpp"
#include "check/mutants.hpp"
#include "check/repro.hpp"

namespace ecfd::check {
namespace {

// --- every mutant is caught ----------------------------------------------

class MutationCatch : public ::testing::TestWithParam<Mutant> {};

TEST_P(MutationCatch, FlaggedWithExpectedPropertyAndWitness) {
  const Mutant m = GetParam();
  const FuzzOutcome out = run_mutant(m, /*seed=*/7);
  EXPECT_FALSE(out.ok) << mutant_name(m) << " slipped past the monitors";
  EXPECT_TRUE(violates(out, expected_property(m)))
      << mutant_name(m) << " should violate " << expected_property(m);
  bool witnessed = false;
  for (const Verdict& v : out.violations) {
    if (v.property == expected_property(m)) {
      witnessed = !v.witness.empty();
      EXPECT_FALSE(v.witness.empty())
          << v.property << " flagged without a witness";
    }
  }
  EXPECT_TRUE(witnessed);
}

TEST_P(MutationCatch, OnlyTheExpectedPropertyFails) {
  // The catching scenario scopes its monitors so a mutant's collateral
  // damage (e.g. a slanderer also perturbing leader election) does not
  // blur which property the monitor attributes the bug to.
  const Mutant m = GetParam();
  const FuzzOutcome out = run_mutant(m, /*seed=*/7);
  for (const Verdict& v : out.violations) {
    EXPECT_EQ(v.property, expected_property(m))
        << mutant_name(m) << " also tripped " << v.property;
  }
}

TEST_P(MutationCatch, RunsAreDeterministic) {
  const Mutant m = GetParam();
  const FuzzOutcome a = run_mutant(m, /*seed=*/7);
  const FuzzOutcome b = run_mutant(m, /*seed=*/7);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllMutants, MutationCatch, ::testing::ValuesIn(all_mutants()),
    [](const ::testing::TestParamInfo<Mutant>& info) {
      return mutant_name(info.param);
    });

// --- shrinking ------------------------------------------------------------

// A hand-built schedule whose violation has exactly one necessary event:
// isolating p0 until just before the horizon starves the leader suffix of
// its stabilization margin, so fd.leader_agreement fails. The crash and
// chaos events are noise the shrinker must strip.
struct ShrinkCase {
  FuzzCaseConfig cfg;
  FaultSchedule schedule;
};

ShrinkCase make_shrink_case() {
  ShrinkCase c;
  c.cfg.n = 5;
  c.cfg.seed = 11;
  c.cfg.horizon = sec(6);
  c.cfg.chaos_end = sec(5);
  c.cfg.stable_margin = sec(1);

  FaultEvent isolate;
  isolate.kind = FaultEvent::Kind::kPartitionWindow;
  isolate.at = msec(500);
  isolate.until = msec(5500);
  isolate.group = ProcessSet(c.cfg.n);
  isolate.group.add(0);

  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.at = sec(1);
  crash.process = 4;

  FaultEvent chaos;
  chaos.kind = FaultEvent::Kind::kChaosWindow;
  chaos.at = sec(1);
  chaos.until = sec(2);
  chaos.chaos.loss_ppm = 100'000;

  c.schedule.events = {crash, isolate, chaos};
  return c;
}

TEST(Shrink, GreedyShrinkKeepsOnlyTheNecessaryEvent) {
  const ShrinkCase c = make_shrink_case();
  const FuzzOutcome full = run_fuzz_case(c.cfg, c.schedule);
  ASSERT_TRUE(violates(full, "fd.leader_agreement"))
      << "setup no longer provokes the violation";

  int runs = 0;
  const FaultSchedule shrunk =
      shrink_schedule(c.cfg, c.schedule, "fd.leader_agreement", &runs);
  ASSERT_EQ(shrunk.events.size(), 1u)
      << "expected the crash and chaos noise to be stripped";
  EXPECT_EQ(shrunk.events[0].kind, FaultEvent::Kind::kPartitionWindow);
  EXPECT_GT(runs, 0);

  // 1-minimality: the surviving event really is necessary.
  const FuzzOutcome empty_run = run_fuzz_case(c.cfg, FaultSchedule{});
  EXPECT_FALSE(violates(empty_run, "fd.leader_agreement"));
  // And the shrunk schedule still violates.
  EXPECT_TRUE(violates(run_fuzz_case(c.cfg, shrunk), "fd.leader_agreement"));
}

// --- repro round trip -----------------------------------------------------

TEST(Repro, TextFormRoundTripsEveryField) {
  ShrinkCase c = make_shrink_case();
  ReproFile r;
  r.config = c.cfg;
  r.schedule = c.schedule;
  r.property = "fd.leader_agreement";
  r.digest = 0xdeadbeefcafef00dULL;

  const std::string text = to_text(r);
  std::string error;
  const auto parsed = parse_repro(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  // Lossless: re-serializing the parse yields the identical file.
  EXPECT_EQ(to_text(*parsed), text);
  EXPECT_EQ(parsed->digest, r.digest);
  EXPECT_EQ(parsed->property, r.property);
  ASSERT_EQ(parsed->schedule.events.size(), r.schedule.events.size());
  EXPECT_EQ(parsed->schedule.events[1].group.to_string(),
            r.schedule.events[1].group.to_string());
  EXPECT_EQ(parsed->schedule.events[2].chaos.loss_ppm,
            r.schedule.events[2].chaos.loss_ppm);
}

TEST(Repro, ShrunkReproReplaysBitIdentically) {
  // The acceptance path end to end: violation -> shrink -> repro file ->
  // parse -> replay reproduces the recorded verdict and digest exactly.
  const ShrinkCase c = make_shrink_case();
  const FaultSchedule shrunk =
      shrink_schedule(c.cfg, c.schedule, "fd.leader_agreement");
  const FuzzOutcome recorded = run_fuzz_case(c.cfg, shrunk);
  ASSERT_TRUE(violates(recorded, "fd.leader_agreement"));

  ReproFile r;
  r.config = c.cfg;
  r.schedule = shrunk;
  r.property = "fd.leader_agreement";
  r.digest = recorded.digest;

  const auto parsed = parse_repro(to_text(r));
  ASSERT_TRUE(parsed.has_value());
  const FuzzOutcome replayed = replay(*parsed);
  EXPECT_TRUE(violates(replayed, "fd.leader_agreement"));
  EXPECT_EQ(replayed.digest, recorded.digest) << "replay diverged";
  EXPECT_EQ(replayed.sim_end, recorded.sim_end);
  EXPECT_EQ(replayed.result_fingerprint, recorded.result_fingerprint);
}

TEST(Repro, ScenarioEventsRoundTripEveryParameter) {
  // The WAN scenario pack's events embed their drawn parameters — latency
  // matrices, flap schedules, gray factors, skew envelopes — so a repro
  // file replays bit-identically even after the generator's distributions
  // change. Every field must survive text -> parse -> text.
  ReproFile r;
  r.config.n = 4;
  r.config.seed = 3;
  r.config.horizon = sec(8);
  r.config.chaos_end = sec(4);
  r.config.stable_margin = sec(2);
  r.property = "fd.eventual_strong_accuracy";
  r.digest = 0x1234abcdULL;

  FaultEvent geo;
  geo.kind = FaultEvent::Kind::kGeoLatency;
  geo.at = 0;
  geo.until = sec(8);
  geo.geo = geo_preset("geo3")->scaled(85, 100);

  FaultEvent flap;
  flap.kind = FaultEvent::Kind::kFlapWindow;
  flap.at = msec(400);
  flap.until = sec(2);
  flap.process = 2;
  flap.flap_period = msec(250);
  flap.flap_up_ppm = 600'000;

  FaultEvent gray;
  gray.kind = FaultEvent::Kind::kGrayWindow;
  gray.at = sec(1);
  gray.until = sec(3);
  gray.process = 1;
  gray.gray_factor_milli = 4500;
  gray.gray_send_extra = msec(12);

  FaultEvent skew;
  skew.kind = FaultEvent::Kind::kSkewWindow;
  skew.at = msec(700);
  skew.until = sec(4);
  skew.process = 3;
  skew.skew_offset = -msec(15);
  skew.skew_drift_ppm = -8'000;
  skew.skew_bound = msec(40);

  r.schedule.events = {geo, flap, gray, skew};

  const std::string text = to_text(r);
  std::string error;
  const auto parsed = parse_repro(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(to_text(*parsed), text);

  ASSERT_EQ(parsed->schedule.events.size(), 4u);
  const FaultEvent& g = parsed->schedule.events[0];
  EXPECT_EQ(g.geo.regions, 3);
  EXPECT_EQ(g.geo.base, geo.geo.base);
  EXPECT_EQ(g.geo.jitter, geo.geo.jitter);
  const FaultEvent& f = parsed->schedule.events[1];
  EXPECT_EQ(f.flap_period, msec(250));
  EXPECT_EQ(f.flap_up_ppm, 600'000u);
  const FaultEvent& gr = parsed->schedule.events[2];
  EXPECT_EQ(gr.gray_factor_milli, 4500u);
  EXPECT_EQ(gr.gray_send_extra, msec(12));
  const FaultEvent& s = parsed->schedule.events[3];
  EXPECT_EQ(s.skew_offset, -msec(15));
  EXPECT_EQ(s.skew_drift_ppm, -8'000);
  EXPECT_EQ(s.skew_bound, msec(40));

  // And the embedded parameters drive the replay: same text, same digest.
  const FuzzOutcome a = replay(*parsed);
  const FuzzOutcome b = replay(*parse_repro(text));
  EXPECT_EQ(a.digest, b.digest);
}

TEST(Repro, SaveAndLoadThroughDisk) {
  ShrinkCase c = make_shrink_case();
  ReproFile r;
  r.config = c.cfg;
  r.schedule = c.schedule;
  r.property = "fd.leader_agreement";
  r.digest = 42;

  const std::string path =
      ::testing::TempDir() + "/ecfd_repro_roundtrip.txt";
  ASSERT_TRUE(save_repro(r, path));
  std::string error;
  const auto loaded = load_repro(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(to_text(*loaded), to_text(r));
  std::remove(path.c_str());
}

TEST(Repro, RejectsMalformedInput) {
  EXPECT_FALSE(parse_repro("").has_value());
  EXPECT_FALSE(parse_repro("not.a.repro\nend\n").has_value());
  std::string error;
  // Missing the "end" marker (truncated file).
  EXPECT_FALSE(parse_repro("ecfd.repro.v1\nn 5\n", &error).has_value());
  EXPECT_FALSE(error.empty());
  // Out-of-range process id.
  const auto bad = parse_repro(
      "ecfd.repro.v1\nn 3\nevent crash at=1000 p=7\nend\n");
  EXPECT_FALSE(bad.has_value());
}

}  // namespace
}  // namespace ecfd::check
