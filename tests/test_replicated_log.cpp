// Tests for state-machine replication on repeated ◇C-consensus
// (core/replicated_log.hpp).
#include "core/replicated_log.hpp"

#include <gtest/gtest.h>

#include "core/ecfd_compose.hpp"
#include "fd/ring_fd.hpp"
#include "fd/scripted_fd.hpp"
#include "net/scenario.hpp"

namespace ecfd::core {
namespace {

struct Cluster {
  std::unique_ptr<System> sys;
  std::vector<std::unique_ptr<EcfdOracle>> oracles;
  std::vector<std::unique_ptr<LogReplica>> replicas;
};

Cluster make_cluster(int n, std::uint64_t seed, int capacity,
                     std::vector<CrashPlan> crashes = {},
                     bool quiescent = false) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = msec(100);
  cfg.delta = msec(5);
  cfg.crashes = std::move(crashes);

  Cluster c;
  c.sys = make_system(cfg);
  std::vector<fd::RingFd*> rings;
  for (ProcessId p = 0; p < n; ++p) {
    rings.push_back(&c.sys->host(p).emplace<fd::RingFd>());
  }
  for (ProcessId p = 0; p < n; ++p) {
    c.oracles.push_back(std::make_unique<EcfdFromRing>(rings[p]));
    LogReplica::Config lc;
    lc.capacity = capacity;
    lc.quiescent = quiescent;
    c.replicas.push_back(std::make_unique<LogReplica>(
        c.sys->host(p), c.oracles.back().get(), lc));
  }
  return c;
}

std::vector<consensus::Value> commands_of(const LogReplica& r) {
  std::vector<consensus::Value> out;
  for (const auto& e : r.log()) out.push_back(e.command);
  return out;
}

TEST(LogReplica, AllReplicasApplyIdenticalLogs) {
  auto c = make_cluster(4, 1, 8);
  c.sys->start();
  // Two clients submit interleaved commands.
  c.replicas[0]->submit(101);
  c.replicas[0]->submit(102);
  c.replicas[2]->submit(201);
  c.sys->run_until(sec(10));

  const auto reference = commands_of(*c.replicas[0]);
  EXPECT_EQ(reference.size(), 3u);
  for (int p = 1; p < 4; ++p) {
    EXPECT_EQ(commands_of(*c.replicas[p]), reference) << "replica " << p;
  }
  // Every submitted command made it in.
  for (consensus::Value v : {101, 102, 201}) {
    EXPECT_NE(std::find(reference.begin(), reference.end(), v),
              reference.end())
        << v;
  }
}

TEST(LogReplica, NoOpsFillSlotsWithoutAppearingInTheLog) {
  auto c = make_cluster(3, 2, 5);
  c.sys->start();
  c.sys->run_until(sec(10));  // nobody submits anything
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(c.replicas[p]->applied_slots(), 5) << "slots all decided";
    EXPECT_TRUE(c.replicas[p]->log().empty()) << "but nothing applied";
  }
}

TEST(LogReplica, SlotsAreAppliedInOrder) {
  auto c = make_cluster(4, 3, 8);
  std::vector<int> applied_slots;
  c.replicas[1]->set_apply([&applied_slots](const LogReplica::Entry& e) {
    applied_slots.push_back(e.slot);
  });
  c.sys->start();
  for (int i = 0; i < 5; ++i) c.replicas[3]->submit(900 + i);
  c.sys->run_until(sec(12));
  ASSERT_GE(applied_slots.size(), 5u);
  EXPECT_TRUE(std::is_sorted(applied_slots.begin(), applied_slots.end()));
  // Commands from one submitter preserve their submission order.
  const auto cmds = commands_of(*c.replicas[1]);
  std::vector<consensus::Value> mine;
  for (auto v : cmds) {
    if (v >= 900) mine.push_back(v);
  }
  EXPECT_EQ(mine, (std::vector<consensus::Value>{900, 901, 902, 903, 904}));
}

TEST(LogReplica, SurvivesLeaderCrashMidLog) {
  auto c = make_cluster(5, 4, 10, {{0, msec(150)}});
  c.sys->start();
  for (ProcessId p = 1; p < 5; ++p) c.replicas[p]->submit(1000 + p);
  c.sys->run_until(sec(20));
  const auto reference = commands_of(*c.replicas[1]);
  for (int p = 2; p < 5; ++p) {
    EXPECT_EQ(commands_of(*c.replicas[p]), reference);
  }
  // All four survivor commands eventually decided.
  EXPECT_EQ(c.replicas[1]->pending(), 0u);
  EXPECT_GE(reference.size(), 4u);
}

TEST(LogReplica, CapacityBoundsTheRun) {
  auto c = make_cluster(3, 5, 2);
  c.sys->start();
  for (int i = 0; i < 5; ++i) c.replicas[0]->submit(10 + i);
  c.sys->run_until(sec(10));
  EXPECT_EQ(c.replicas[0]->applied_slots(), 2);
  EXPECT_LE(c.replicas[0]->log().size(), 2u);
  EXPECT_GE(c.replicas[0]->pending(), 3u) << "overflow stays pending";
}

TEST(LogReplica, QuiescentIdleClusterConsumesNoSlots) {
  // The flip side of NoOpsFillSlots: with quiescent mode on, an idle
  // cluster leaves the bounded log untouched — the property the kv
  // service relies on to not burn through its capacity between requests.
  auto c = make_cluster(3, 2, 5, {}, /*quiescent=*/true);
  c.sys->start();
  c.sys->run_until(sec(10));
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(c.replicas[p]->applied_slots(), 0) << "replica " << p;
    EXPECT_TRUE(c.replicas[p]->log().empty()) << "replica " << p;
  }
}

TEST(LogReplica, QuiescentClusterStillReplicatesLeaderSubmissions) {
  // Foreign traffic on a slot wakes the dormant instances, so a quiescent
  // log still commits: the leader proposes, everyone else joins in.
  auto c = make_cluster(3, 9, 8, {}, /*quiescent=*/true);
  c.sys->start();
  c.sys->run_until(msec(300));  // FD stable; p0 is the ring leader
  c.replicas[0]->submit(601);
  c.replicas[0]->submit(602);
  c.sys->run_until(sec(10));

  const auto reference = commands_of(*c.replicas[0]);
  EXPECT_EQ(reference, (std::vector<consensus::Value>{601, 602}));
  for (int p = 1; p < 3; ++p) {
    EXPECT_EQ(commands_of(*c.replicas[p]), reference) << "replica " << p;
  }
  // Only the slots that carried commands were consumed; the rest of the
  // bounded log is still available.
  for (int p = 0; p < 3; ++p) {
    EXPECT_LT(c.replicas[p]->applied_slots(), 8) << "replica " << p;
    EXPECT_FALSE(c.replicas[p]->exhausted());
  }
}

TEST(LogReplica, CompactDropsTheAppliedPrefix) {
  auto c = make_cluster(3, 7, 8);
  c.sys->start();
  for (int i = 0; i < 4; ++i) c.replicas[0]->submit(500 + i);
  c.sys->run_until(sec(10));
  auto& r = *c.replicas[0];
  ASSERT_EQ(r.applied_slots(), 8);
  ASSERT_EQ(r.log().size(), 4u);

  const int cut = r.log()[2].slot;  // keep the last two entries
  r.compact(cut);
  EXPECT_EQ(r.compacted_upto(), cut);
  ASSERT_EQ(r.log().size(), 2u);
  for (const auto& e : r.log()) EXPECT_GE(e.slot, cut);

  // Monotone: compacting backwards is a no-op.
  r.compact(0);
  EXPECT_EQ(r.compacted_upto(), cut);
  ASSERT_EQ(r.log().size(), 2u);

  // Clamped to the applied prefix (here: everything).
  r.compact(1000);
  EXPECT_EQ(r.compacted_upto(), 8);
  EXPECT_TRUE(r.log().empty());
}

TEST(LogReplica, InstallSnapshotFastForwardsPastMissedSlots) {
  // The install-on-join flow: a partitioned-away replica misses the whole
  // run (decide messages are one-shot diffusion, never retransmitted), and
  // a snapshot covering the decided prefix fast-forwards it — without
  // running apply callbacks for the covered slots.
  auto c = make_cluster(3, 8, 8);
  int p2_applies = 0;
  c.replicas[2]->set_apply(
      [&p2_applies](const LogReplica::Entry&) { ++p2_applies; });
  c.sys->start();

  ProcessSet majority_side(3);
  majority_side.add(0);
  majority_side.add(1);
  c.sys->network().partition(majority_side);  // {p0, p1} vs {p2}

  for (int i = 0; i < 4; ++i) c.replicas[0]->submit(700 + i);
  c.sys->run_until(sec(10));
  // The majority decided every slot without p2 (it is suspected, so the
  // Phase 2/4 waits don't block on it); p2 learned none of it.
  ASSERT_EQ(c.replicas[0]->applied_slots(), 8);
  ASSERT_EQ(c.replicas[0]->log().size(), 4u);
  ASSERT_EQ(c.replicas[2]->applied_slots(), 0);

  // Shrinking/no-op installs do nothing.
  c.replicas[2]->install_snapshot(0);
  EXPECT_EQ(c.replicas[2]->applied_slots(), 0);

  // The real install: the service hands p2 a state snapshot covering the
  // full decided prefix and fast-forwards the log.
  c.replicas[2]->install_snapshot(8);
  EXPECT_EQ(c.replicas[2]->applied_slots(), 8);
  EXPECT_EQ(c.replicas[2]->compacted_upto(), 8);
  EXPECT_TRUE(c.replicas[2]->log().empty()) << "covered slots not replayed";
  EXPECT_EQ(p2_applies, 0) << "no apply callbacks for installed slots";
  EXPECT_TRUE(c.replicas[2]->exhausted());

  // Healing afterwards changes nothing: stray messages for covered slots
  // are ignored.
  c.sys->network().heal();
  c.sys->run_until(sec(12));
  EXPECT_EQ(c.replicas[2]->applied_slots(), 8);
  EXPECT_EQ(p2_applies, 0);
}

TEST(LogReplica, ScriptedStableClusterIsFast) {
  // With a detector that is stable from the start, every slot should
  // close in a single round; 8 slots complete within a few hundred ms.
  const int n = 4;
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 6;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = 0;
  cfg.delta = msec(5);
  auto sys = make_system(cfg);
  std::vector<std::unique_ptr<EcfdOracle>> oracles;
  std::vector<std::unique_ptr<LogReplica>> replicas;
  for (ProcessId p = 0; p < n; ++p) {
    auto& scripted = sys->host(p).emplace<fd::ScriptedFd>(
        fd::stable_script(n, p, ProcessSet(n), 0, 0));
    oracles.push_back(
        std::make_unique<EcfdFromSAndOmega>(&scripted, &scripted));
    LogReplica::Config lc;
    lc.capacity = 8;
    replicas.push_back(std::make_unique<LogReplica>(
        sys->host(p), oracles.back().get(), lc));
  }
  sys->start();
  replicas[1]->submit(42);
  sys->run_until(msec(800));
  EXPECT_EQ(replicas[0]->applied_slots(), 8);
  ASSERT_EQ(replicas[0]->log().size(), 1u);
  EXPECT_EQ(replicas[0]->log()[0].command, 42);
}

}  // namespace
}  // namespace ecfd::core
