// Tests for state-machine replication on repeated ◇C-consensus
// (core/replicated_log.hpp).
#include "core/replicated_log.hpp"

#include <gtest/gtest.h>

#include "core/ecfd_compose.hpp"
#include "fd/ring_fd.hpp"
#include "fd/scripted_fd.hpp"
#include "net/scenario.hpp"

namespace ecfd::core {
namespace {

struct Cluster {
  std::unique_ptr<System> sys;
  std::vector<std::unique_ptr<EcfdOracle>> oracles;
  std::vector<std::unique_ptr<LogReplica>> replicas;
};

Cluster make_cluster(int n, std::uint64_t seed, int capacity,
                     std::vector<CrashPlan> crashes = {}) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = msec(100);
  cfg.delta = msec(5);
  cfg.crashes = std::move(crashes);

  Cluster c;
  c.sys = make_system(cfg);
  std::vector<fd::RingFd*> rings;
  for (ProcessId p = 0; p < n; ++p) {
    rings.push_back(&c.sys->host(p).emplace<fd::RingFd>());
  }
  for (ProcessId p = 0; p < n; ++p) {
    c.oracles.push_back(std::make_unique<EcfdFromRing>(rings[p]));
    LogReplica::Config lc;
    lc.capacity = capacity;
    c.replicas.push_back(std::make_unique<LogReplica>(
        c.sys->host(p), c.oracles.back().get(), lc));
  }
  return c;
}

std::vector<consensus::Value> commands_of(const LogReplica& r) {
  std::vector<consensus::Value> out;
  for (const auto& e : r.log()) out.push_back(e.command);
  return out;
}

TEST(LogReplica, AllReplicasApplyIdenticalLogs) {
  auto c = make_cluster(4, 1, 8);
  c.sys->start();
  // Two clients submit interleaved commands.
  c.replicas[0]->submit(101);
  c.replicas[0]->submit(102);
  c.replicas[2]->submit(201);
  c.sys->run_until(sec(10));

  const auto reference = commands_of(*c.replicas[0]);
  EXPECT_EQ(reference.size(), 3u);
  for (int p = 1; p < 4; ++p) {
    EXPECT_EQ(commands_of(*c.replicas[p]), reference) << "replica " << p;
  }
  // Every submitted command made it in.
  for (consensus::Value v : {101, 102, 201}) {
    EXPECT_NE(std::find(reference.begin(), reference.end(), v),
              reference.end())
        << v;
  }
}

TEST(LogReplica, NoOpsFillSlotsWithoutAppearingInTheLog) {
  auto c = make_cluster(3, 2, 5);
  c.sys->start();
  c.sys->run_until(sec(10));  // nobody submits anything
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(c.replicas[p]->applied_slots(), 5) << "slots all decided";
    EXPECT_TRUE(c.replicas[p]->log().empty()) << "but nothing applied";
  }
}

TEST(LogReplica, SlotsAreAppliedInOrder) {
  auto c = make_cluster(4, 3, 8);
  std::vector<int> applied_slots;
  c.replicas[1]->set_apply([&applied_slots](const LogReplica::Entry& e) {
    applied_slots.push_back(e.slot);
  });
  c.sys->start();
  for (int i = 0; i < 5; ++i) c.replicas[3]->submit(900 + i);
  c.sys->run_until(sec(12));
  ASSERT_GE(applied_slots.size(), 5u);
  EXPECT_TRUE(std::is_sorted(applied_slots.begin(), applied_slots.end()));
  // Commands from one submitter preserve their submission order.
  const auto cmds = commands_of(*c.replicas[1]);
  std::vector<consensus::Value> mine;
  for (auto v : cmds) {
    if (v >= 900) mine.push_back(v);
  }
  EXPECT_EQ(mine, (std::vector<consensus::Value>{900, 901, 902, 903, 904}));
}

TEST(LogReplica, SurvivesLeaderCrashMidLog) {
  auto c = make_cluster(5, 4, 10, {{0, msec(150)}});
  c.sys->start();
  for (ProcessId p = 1; p < 5; ++p) c.replicas[p]->submit(1000 + p);
  c.sys->run_until(sec(20));
  const auto reference = commands_of(*c.replicas[1]);
  for (int p = 2; p < 5; ++p) {
    EXPECT_EQ(commands_of(*c.replicas[p]), reference);
  }
  // All four survivor commands eventually decided.
  EXPECT_EQ(c.replicas[1]->pending(), 0u);
  EXPECT_GE(reference.size(), 4u);
}

TEST(LogReplica, CapacityBoundsTheRun) {
  auto c = make_cluster(3, 5, 2);
  c.sys->start();
  for (int i = 0; i < 5; ++i) c.replicas[0]->submit(10 + i);
  c.sys->run_until(sec(10));
  EXPECT_EQ(c.replicas[0]->applied_slots(), 2);
  EXPECT_LE(c.replicas[0]->log().size(), 2u);
  EXPECT_GE(c.replicas[0]->pending(), 3u) << "overflow stays pending";
}

TEST(LogReplica, ScriptedStableClusterIsFast) {
  // With a detector that is stable from the start, every slot should
  // close in a single round; 8 slots complete within a few hundred ms.
  const int n = 4;
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 6;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = 0;
  cfg.delta = msec(5);
  auto sys = make_system(cfg);
  std::vector<std::unique_ptr<EcfdOracle>> oracles;
  std::vector<std::unique_ptr<LogReplica>> replicas;
  for (ProcessId p = 0; p < n; ++p) {
    auto& scripted = sys->host(p).emplace<fd::ScriptedFd>(
        fd::stable_script(n, p, ProcessSet(n), 0, 0));
    oracles.push_back(
        std::make_unique<EcfdFromSAndOmega>(&scripted, &scripted));
    LogReplica::Config lc;
    lc.capacity = 8;
    replicas.push_back(std::make_unique<LogReplica>(
        sys->host(p), oracles.back().get(), lc));
  }
  sys->start();
  replicas[1]->submit(42);
  sys->run_until(msec(800));
  EXPECT_EQ(replicas[0]->applied_slots(), 8);
  ASSERT_EQ(replicas[0]->log().size(), 1u);
  EXPECT_EQ(replicas[0]->log()[0].command, 42);
}

}  // namespace
}  // namespace ecfd::core
