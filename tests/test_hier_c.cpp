// Tests for the two-level hierarchical ◇C detector (fd/hier_c.hpp): class
// membership under crashes, cell-leader re-election, whole-cell loss,
// digest staleness across a partition/heal, the O(n) steady-state message
// bound, and bitwise determinism at n=256.
#include "fd/hier_c.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::run_fd_scenario;

testutil::Installer installer(fd::HierC::Config cfg = {}) {
  return [cfg](ProcessHost& host, ProcessId,
               std::vector<std::shared_ptr<void>>&) {
    auto& f = host.emplace<fd::HierC>(cfg);
    return testutil::OracleRefs{&f, &f};
  };
}

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(250), msec(50));
}

TEST(HierC, CellGeometryDefaults) {
  ScenarioConfig cfg = base_scenario(9, 1);
  auto sys = make_system(cfg);
  auto& f = sys->host(4).emplace<fd::HierC>();
  EXPECT_EQ(f.cell_size(), 3);
  EXPECT_EQ(f.n_cells(), 3);
  EXPECT_EQ(f.cell_of(0), 0);
  EXPECT_EQ(f.cell_of(4), 1);
  EXPECT_EQ(f.cell_of(8), 2);
}

TEST(HierC, IsEventuallyConsistentUnderCrashes) {
  // One crash inside a follower cell, one crash of a cell leader.
  auto cfg = base_scenario(9, 2);
  cfg.with_crash(4, msec(700)).with_crash(3, sec(1));
  auto res = run_fd_scenario(cfg, installer(), sec(10));
  EXPECT_TRUE(res.report.is_eventually_perfect());
  EXPECT_TRUE(res.report.is_eventually_consistent());
  EXPECT_EQ(res.report.omega_leader, 0);
}

TEST(HierC, TopLeaderCrashReElects) {
  // p0 is both cell-0 leader and top leader; after it crashes the digest
  // leader must converge to p1 (next candidate in the first live cell).
  auto cfg = base_scenario(9, 3);
  cfg.with_crash(0, msec(800));
  auto res = run_fd_scenario(cfg, installer(), sec(10));
  EXPECT_TRUE(res.report.is_eventually_consistent());
  EXPECT_EQ(res.report.omega_leader, 1);
}

TEST(HierC, WholeCellCrashMovesTopLeadership) {
  // Cell 0 dies entirely: top leadership must jump a WHOLE cell (to p3),
  // and every cell-0 member must end up in everyone's digest. This is the
  // scenario the cell-contact rotation exists for — both the believed
  // top leader and its believed successors inside cell 0 are gone.
  auto cfg = base_scenario(9, 4);
  cfg.with_crash(0, msec(600)).with_crash(1, msec(700)).with_crash(2, msec(800));
  auto res = run_fd_scenario(cfg, installer(), sec(12));
  EXPECT_TRUE(res.report.is_eventually_perfect());
  EXPECT_TRUE(res.report.is_eventually_consistent());
  EXPECT_EQ(res.report.omega_leader, 3);
}

TEST(HierC, DigestRecoversFromPartitionStaleness) {
  // Partition the first cell away: each side's digests go stale about the
  // other (mass mutual suspicion). After heal, refreshed cell reports must
  // retract every false suspicion and re-converge on p0's digest.
  const int n = 9;
  ScenarioConfig cfg = base_scenario(n, 5);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  std::vector<fd::HierC*> fds;
  for (ProcessId p = 0; p < n; ++p) {
    fds.push_back(&sys->host(p).emplace<fd::HierC>());
  }
  sys->start();
  sys->run_until(msec(500));
  sys->network().partition(testutil::minority(n, 3));  // cell 0 | rest
  sys->run_until(sec(3));
  // Staleness while split: the majority side suspects all of cell 0 and
  // elects p3.
  EXPECT_TRUE(fds[4]->suspected().contains(0));
  EXPECT_EQ(fds[4]->trusted(), 3);
  sys->network().heal();
  sys->run_until(sec(9));
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_TRUE(fds[p]->suspected().empty()) << "stale digest at p" << p;
    EXPECT_EQ(fds[p]->trusted(), 0) << "leader at p" << p;
  }
}

TEST(HierC, SteadyStateMessageCostIsLinear) {
  // The tentpole claim at module granularity: ~2n messages per period in
  // steady state (each member one cell beat; each cell leader one top beat
  // and one digest re-broadcast), against heartbeat ◇P's n(n-1).
  const int n = 64;
  auto cfg = base_scenario(n, 6);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  for (ProcessId p = 0; p < n; ++p) sys->host(p).emplace<fd::HierC>();
  sys->start();
  sys->run_until(sec(1));  // past bring-up elections
  const auto before = sys->network().sent_total();
  sys->run_until(sec(3));
  const auto sent = sys->network().sent_total() - before;
  fd::HierC::Config defaults;
  const double periods = static_cast<double>(sec(2)) / defaults.period;
  EXPECT_LT(static_cast<double>(sent), periods * 3 * n);
  EXPECT_GT(static_cast<double>(sent), periods * 1 * n);
}

TEST(HierC, DeterministicAtN256) {
  // Same scenario, same seed, two fresh systems: identical message totals
  // and identical final digests at every process.
  auto run_once = [](std::vector<ProcessSet>* susp, std::int64_t* sent) {
    auto cfg = base_scenario(256, 7);
    cfg.with_crash(129, msec(600));  // mid-range non-leader member
    auto sys = make_system(cfg);
    std::vector<fd::HierC*> fds;
    for (ProcessId p = 0; p < 256; ++p) {
      fds.push_back(&sys->host(p).emplace<fd::HierC>());
    }
    sys->start();
    sys->run_until(sec(3));
    for (auto* f : fds) susp->push_back(f->suspected());
    *sent = sys->network().sent_total();
  };
  std::vector<ProcessSet> susp_a, susp_b;
  std::int64_t sent_a = 0, sent_b = 0;
  run_once(&susp_a, &sent_a);
  run_once(&susp_b, &sent_b);
  EXPECT_EQ(sent_a, sent_b);
  ASSERT_EQ(susp_a.size(), susp_b.size());
  for (std::size_t i = 0; i < susp_a.size(); ++i) {
    EXPECT_EQ(susp_a[i], susp_b[i]) << "digest diverged at p" << i;
  }
  EXPECT_TRUE(susp_a[0].contains(129));
}

TEST(HierC, UnmutatedPassesStuckPropagatorScenario) {
  // The exact scenario check/fuzz.cpp uses to catch Mutant::
  // kStuckCellPropagator, with the hook OFF: the healthy detector must
  // satisfy fd.strong_completeness there, so the mutation test isolates
  // the seeded bug rather than a too-hard scenario (promised in
  // check/mutants.hpp).
  const int n = 5;
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 11;
  cfg.links = LinkKind::kReliable;
  cfg.with_crash(n - 1, sec(2));
  auto res = run_fd_scenario(cfg, installer(), sec(10));
  EXPECT_TRUE(res.report.strong_completeness.holds);
  EXPECT_TRUE(res.report.is_eventually_consistent());
}

}  // namespace
}  // namespace ecfd
