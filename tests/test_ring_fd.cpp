#include "fd/ring_fd.hpp"

#include <gtest/gtest.h>

#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::holds_with_margin;
using testutil::run_fd_scenario;

testutil::Installer ring_installer() {
  return [](ProcessHost& host, ProcessId,
            std::vector<std::shared_ptr<void>>&) {
    auto& ring = host.emplace<fd::RingFd>();
    return testutil::OracleRefs{&ring, &ring};
  };
}

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(300), msec(60));
}

TEST(RingFd, FailureFreeConvergesToNoSuspicionsAndLeaderP0) {
  auto res = run_fd_scenario(base_scenario(5, 1), ring_installer(), sec(8));
  EXPECT_TRUE(res.report.eventual_strong_accuracy.holds);
  EXPECT_TRUE(res.report.omega.holds);
  EXPECT_EQ(res.report.omega_leader, 0) << "ring leader is first in order";
  EXPECT_TRUE(res.report.is_eventually_consistent());
}

TEST(RingFd, CrashDetectedAndPropagatedAroundRing) {
  auto cfg = base_scenario(6, 2);
  cfg.with_crash(2, sec(1));
  auto res = run_fd_scenario(cfg, ring_installer(), sec(10));
  EXPECT_TRUE(res.report.is_eventually_perfect())
      << "SC holds=" << res.report.strong_completeness.holds
      << " from=" << res.report.strong_completeness.from
      << " ESA holds=" << res.report.eventual_strong_accuracy.holds
      << " from=" << res.report.eventual_strong_accuracy.from;
}

TEST(RingFd, LeaderFallsToFirstCorrectWhenP0Crashes) {
  auto cfg = base_scenario(5, 3);
  cfg.with_crash(0, sec(1)).with_crash(1, sec(2));
  auto res = run_fd_scenario(cfg, ring_installer(), sec(12));
  EXPECT_TRUE(res.report.omega.holds);
  EXPECT_EQ(res.report.omega_leader, 2)
      << "first correct process in ring order";
  EXPECT_TRUE(res.report.is_eventually_consistent());
}

TEST(RingFd, LinearMessageCost) {
  // 2n messages per period (n QUERY + n REPLY) in the steady state, plus
  // the occasional recovery poll.
  ScenarioConfig cfg = base_scenario(8, 4);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  for (ProcessId p = 0; p < cfg.n; ++p) sys->host(p).emplace<fd::RingFd>();
  sys->start();
  sys->run_until(sec(2));
  const auto queries = sys->counters().get("msg.ring.query.sent");
  const auto replies = sys->counters().get("msg.ring.reply.sent");
  fd::RingFd::Config defaults;
  const double periods = static_cast<double>(sec(2)) / defaults.period;
  EXPECT_NEAR(static_cast<double>(queries), periods * cfg.n,
              periods * cfg.n * 0.10);
  EXPECT_NEAR(static_cast<double>(replies), periods * cfg.n,
              periods * cfg.n * 0.10);
}

TEST(RingFd, TargetSkipsSuspectedProcesses) {
  ScenarioConfig cfg = base_scenario(4, 5);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  std::vector<fd::RingFd*> rings;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    rings.push_back(&sys->host(p).emplace<fd::RingFd>());
  }
  sys->crash_at(1, msec(100));
  sys->start();
  sys->run_until(sec(3));
  EXPECT_EQ(rings[0]->target(), 2) << "p0 must skip crashed p1";
  EXPECT_TRUE(rings[0]->suspected().contains(1));
}

struct SweepParam {
  std::uint64_t seed;
  int n;
  int crashes;
};

class RingFdSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RingFdSweep, EventuallyConsistent) {
  const SweepParam param = GetParam();
  auto cfg = base_scenario(param.n, param.seed);
  for (int i = 0; i < param.crashes; ++i) {
    // Crash from the middle of the ring, staggered.
    cfg.with_crash((param.n / 2 + i) % param.n, msec(400) + i * msec(500));
  }
  auto res = run_fd_scenario(cfg, ring_installer(), sec(15));
  EXPECT_TRUE(res.report.is_eventually_consistent())
      << "seed=" << param.seed << " n=" << param.n
      << " crashes=" << param.crashes
      << " SC=" << res.report.strong_completeness.holds
      << " EWA=" << res.report.eventual_weak_accuracy.holds
      << " omega=" << res.report.omega.holds
      << " couple=" << res.report.ecfd_coupling.holds;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RingFdSweep,
    ::testing::Values(SweepParam{21, 4, 1}, SweepParam{22, 5, 2},
                      SweepParam{23, 6, 1}, SweepParam{24, 7, 3},
                      SweepParam{25, 5, 0}, SweepParam{26, 3, 1},
                      SweepParam{27, 8, 2}));

}  // namespace
}  // namespace ecfd
