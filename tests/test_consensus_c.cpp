// Tests for the paper's main algorithm: Uniform Consensus with ◇C
// (Figs. 3-4, Theorem 2).
#include "core/consensus_c.hpp"

#include <gtest/gtest.h>

#include "consensus/harness.hpp"
#include "core/ecfd_compose.hpp"
#include "fd/scripted_fd.hpp"

namespace ecfd::consensus {
namespace {

HarnessConfig base(int n, std::uint64_t seed) {
  HarnessConfig cfg;
  cfg.scenario.n = n;
  cfg.scenario.seed = seed;
  cfg.scenario.links = LinkKind::kPartialSync;
  cfg.scenario.gst = msec(200);
  cfg.scenario.delta = msec(5);
  cfg.scenario.pre_gst_max = msec(50);
  cfg.algo = Algo::kEcfdC;
  cfg.fd = FdStack::kScriptedStable;
  return cfg;
}

void expect_all_good(const HarnessResult& r, const char* what) {
  EXPECT_TRUE(r.every_correct_decided) << what << ": " << summarize(r);
  EXPECT_TRUE(r.uniform_agreement) << what << ": " << summarize(r);
  EXPECT_TRUE(r.validity) << what << ": " << summarize(r);
}

TEST(ConsensusC, DecidesInRoundOneWithAStableDetector) {
  auto cfg = base(5, 1);
  cfg.fd_stable_at = 0;  // stable from the start
  auto r = run_consensus(cfg);
  expect_all_good(r, "stable");
  EXPECT_EQ(r.max_decision_round, 1)
      << "early consensus: one round when the detector is stable";
}

TEST(ConsensusC, DecidesAfterLateStabilization) {
  auto cfg = base(5, 2);
  cfg.fd_stable_at = msec(400);  // chaos through GST
  auto r = run_consensus(cfg);
  expect_all_good(r, "late-stabilization");
}

TEST(ConsensusC, ToleratesMinorityCrashes) {
  auto cfg = base(5, 3);
  cfg.scenario.with_crash(3, msec(100)).with_crash(4, msec(250));
  cfg.fd_stable_at = msec(400);
  auto r = run_consensus(cfg);
  expect_all_good(r, "two crashes of five");
}

TEST(ConsensusC, ToleratesLeaderlikeCrash) {
  // p0 (would-be leader) crashes; the script then names p1.
  auto cfg = base(5, 4);
  cfg.scenario.with_crash(0, msec(150));
  cfg.fd_stable_at = msec(400);  // stabilizes on the first correct, p1
  auto r = run_consensus(cfg);
  expect_all_good(r, "leader crash");
  for (ProcessId p = 1; p < 5; ++p) {
    EXPECT_TRUE(r.outcomes[static_cast<std::size_t>(p)].decided);
  }
}

TEST(ConsensusC, WorksWithRingDetector) {
  auto cfg = base(5, 5);
  cfg.fd = FdStack::kRing;
  cfg.scenario.with_crash(2, msec(300));
  auto r = run_consensus(cfg);
  expect_all_good(r, "ring ◇C");
}

TEST(ConsensusC, WorksWithHeartbeatDetector) {
  auto cfg = base(5, 6);
  cfg.fd = FdStack::kHeartbeatP;
  cfg.scenario.with_crash(4, msec(300));
  auto r = run_consensus(cfg);
  expect_all_good(r, "heartbeat ◇C");
}

TEST(ConsensusC, WorksWithComposedOmegaPlusHeartbeat) {
  auto cfg = base(5, 7);
  cfg.fd = FdStack::kOmegaPlusHeartbeat;
  cfg.scenario.with_crash(0, msec(300));
  auto r = run_consensus(cfg);
  expect_all_good(r, "composed ◇C");
}

TEST(ConsensusC, MergedPhase01VariantDecides) {
  auto cfg = base(5, 8);
  cfg.algo = Algo::kEcfdCMerged;
  cfg.fd_stable_at = msec(300);
  auto r = run_consensus(cfg);
  expect_all_good(r, "merged phases");
}

TEST(ConsensusC, UnaffectedByEwaOnlyDetector) {
  // Theorem 3's adversarial ◇S: everyone suspects everyone but the leader.
  // The ◇C algorithm picks the leader as coordinator directly, so it still
  // decides in one round after stabilization.
  auto cfg = base(5, 9);
  cfg.scripted_ewa_only = true;
  cfg.scripted_leader = 3;
  cfg.fd_stable_at = 0;
  auto r = run_consensus(cfg);
  expect_all_good(r, "ewa-only");
  EXPECT_EQ(r.max_decision_round, 1);
}

TEST(ConsensusC, AllSameProposalDecidesThatValue) {
  auto cfg = base(4, 10);
  cfg.proposals = {7, 7, 7, 7};
  cfg.fd_stable_at = 0;
  auto r = run_consensus(cfg);
  expect_all_good(r, "uniform proposals");
  for (const auto& o : r.outcomes) {
    if (o.decided) {
      EXPECT_EQ(o.value, 7);
    }
  }
}

TEST(ConsensusC, DecidedValueIsTheLeadersPickNotArbitrary) {
  // With a stable leader from the start, the coordinator proposes the
  // largest-timestamp estimate; in round 1 all timestamps are 0, so it
  // picks its own (first recorded) estimate. Whatever it is, it must be
  // one of the proposals — checked by validity — and common.
  auto cfg = base(5, 11);
  cfg.proposals = {10, 20, 30, 40, 50};
  cfg.fd_stable_at = 0;
  auto r = run_consensus(cfg);
  expect_all_good(r, "distinct proposals");
}

TEST(ConsensusC, UniformAgreementWhenDeciderCrashesImmediately) {
  // p0 leads, decides in round 1, and crashes shortly after. The scripted
  // detector then (legally, per Omega) fails over to p1. Everyone who
  // decides must agree — whether they learned the decision from p0's
  // reliable broadcast or from a later round led by p1.
  const int n = 5;
  ScenarioConfig sc;
  sc.n = n;
  sc.seed = 12;
  sc.links = LinkKind::kPartialSync;
  sc.gst = 0;  // fast links so p0 usually decides before its crash
  sc.delta = msec(5);
  sc.with_crash(0, msec(40));
  auto sys = make_system(sc);

  std::vector<ConsensusProtocol*> cons;
  std::vector<std::shared_ptr<void>> keepalive;
  for (ProcessId p = 0; p < n; ++p) {
    std::vector<fd::ScriptedFd::Step> steps;
    ProcessSet none(n);
    ProcessSet just0(n);
    just0.add(0);
    steps.push_back({0, none, 0});           // p0 leads, nobody suspected
    steps.push_back({msec(200), just0, 1});  // failover to p1
    auto& scripted = sys->host(p).emplace<fd::ScriptedFd>(steps);
    auto oracle =
        std::make_shared<core::EcfdFromSAndOmega>(&scripted, &scripted);
    keepalive.push_back(oracle);
    auto& rb = sys->host(p).emplace<broadcast::ReliableBroadcast>();
    cons.push_back(&sys->host(p).emplace<core::ConsensusC>(oracle.get(), &rb));
  }
  sys->start();
  for (ProcessId p = 0; p < n; ++p) cons[static_cast<std::size_t>(p)]->propose(100 + p);
  sys->run_until(sec(10));

  std::optional<Value> agreed;
  for (ProcessId p = 1; p < n; ++p) {
    const auto& d = cons[static_cast<std::size_t>(p)]->decision();
    ASSERT_TRUE(d.has_value()) << "p" << p << " did not decide";
    if (!agreed) agreed = d->value;
    EXPECT_EQ(d->value, *agreed);
  }
  // If p0 got its decision in before crashing, it must agree too.
  if (cons[0]->decision().has_value()) {
    EXPECT_EQ(cons[0]->decision()->value, *agreed);
  }
}

TEST(ConsensusC, StaggeredProposalsDoNotLoseAnnouncements) {
  // Regression test: the coordinator announces round 1 exactly once. A
  // process that proposes late receives that announcement while still in
  // "round 0" and must buffer it (dropping it deadlocks the round, since
  // the coordinator waits for a reply from every unsuspected process).
  const int n = 5;
  ScenarioConfig sc;
  sc.n = n;
  sc.seed = 77;
  sc.links = LinkKind::kPartialSync;
  sc.gst = 0;
  sc.delta = msec(5);
  auto sys = make_system(sc);

  std::vector<ConsensusProtocol*> cons;
  std::vector<std::shared_ptr<void>> keepalive;
  for (ProcessId p = 0; p < n; ++p) {
    auto& scripted = sys->host(p).emplace<fd::ScriptedFd>(
        fd::stable_script(n, p, ProcessSet(n), /*leader=*/0, /*from=*/0));
    auto oracle =
        std::make_shared<core::EcfdFromSAndOmega>(&scripted, &scripted);
    keepalive.push_back(oracle);
    auto& rb = sys->host(p).emplace<broadcast::ReliableBroadcast>();
    cons.push_back(&sys->host(p).emplace<core::ConsensusC>(oracle.get(), &rb));
  }
  sys->start();
  // The leader proposes immediately; everyone else 100ms later — long
  // after the leader's one-shot round-1 announcement arrived.
  cons[0]->propose(100);
  for (ProcessId p = 1; p < n; ++p) {
    sys->scheduler().schedule_at(msec(100), [&cons, p]() {
      cons[static_cast<std::size_t>(p)]->propose(100 + p);
    });
  }
  sys->run_until(sec(10));
  for (ProcessId p = 0; p < n; ++p) {
    ASSERT_TRUE(cons[static_cast<std::size_t>(p)]->has_decided())
        << "p" << p << " stuck";
    EXPECT_EQ(cons[static_cast<std::size_t>(p)]->decision()->value,
              cons[0]->decision()->value);
  }
}

TEST(ConsensusC, DuelingCoordinatorsDoNotDeadlock) {
  // Regression test: with a live (heartbeat + leader-candidate) stack and
  // the leader crashing early, transient detector disagreement can create
  // two coordinators in one round. The null-proposing coordinator skips
  // Phase 3, so it must still nack the other coordinator's proposition
  // when advancing (the Fig. 4 "late coordinator" sweep) — or that
  // coordinator blocks forever in Phase 4. Seed 504 reproduced exactly
  // this deadlock before the sweep was added.
  auto cfg = base(7, 504);
  cfg.fd = FdStack::kOmegaPlusHeartbeat;
  cfg.scenario.gst = msec(100);
  cfg.scenario.pre_gst_max = msec(40);
  cfg.scenario.with_crash(0, msec(50));
  cfg.horizon = sec(60);
  auto r = run_consensus(cfg);
  expect_all_good(r, "dueling coordinators (seed 504)");
}

TEST(ConsensusC, MaxRoundsGivesUpCleanly) {
  // A detector that never stabilizes (chaos forever = stable_at beyond
  // horizon) with the round cap: nobody may decide, and safety holds.
  auto cfg = base(5, 13);
  cfg.fd_stable_at = sec(100);
  cfg.max_rounds = 10;
  cfg.horizon = sec(5);
  auto r = run_consensus(cfg);
  EXPECT_TRUE(r.uniform_agreement);
  EXPECT_TRUE(r.validity);
}

TEST(ConsensusC, LargerSystemDecides) {
  auto cfg = base(9, 14);
  cfg.scenario.with_crash(6, msec(100))
      .with_crash(7, msec(200))
      .with_crash(8, msec(300));
  cfg.fd_stable_at = msec(400);
  auto r = run_consensus(cfg);
  expect_all_good(r, "n=9 f=3");
}

TEST(ConsensusC, ThreeProcessesMinimumMajority) {
  auto cfg = base(3, 15);
  cfg.scenario.with_crash(2, msec(150));
  cfg.fd_stable_at = msec(300);
  auto r = run_consensus(cfg);
  expect_all_good(r, "n=3 f=1");
}

}  // namespace
}  // namespace ecfd::consensus
