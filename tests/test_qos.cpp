// Tests for the failure-detector QoS metrics (fd/qos.hpp): unit tests on
// synthetic sample timelines plus an integration check on a live run.
#include "fd/qos.hpp"

#include <gtest/gtest.h>

#include "fd/heartbeat_p.hpp"
#include "fd_test_util.hpp"

namespace ecfd {
namespace {

constexpr int kN = 3;

FdSample sample(TimeUs t, std::initializer_list<ProcessSet> susp) {
  FdSample s;
  s.time = t;
  s.trusted.resize(kN);
  for (const auto& sp : susp) s.suspected.emplace_back(sp);
  return s;
}

RunFacts facts(std::initializer_list<ProcessId> faulty, TimeUs end) {
  RunFacts f;
  f.n = kN;
  f.correct = ProcessSet::full(kN);
  for (ProcessId q : faulty) f.correct.remove(q);
  f.end_time = end;
  return f;
}

ProcessSet set_of(std::initializer_list<ProcessId> ids) {
  ProcessSet s(kN);
  for (ProcessId p : ids) s.add(p);
  return s;
}

TEST(Qos, DetectionDelays) {
  // p2 crashes at t=100. p0 suspects it from t=200, p1 from t=400.
  auto f = facts({2}, 500);
  std::vector<FdSample> samples = {
      sample(100, {set_of({}), set_of({}), set_of({})}),
      sample(200, {set_of({2}), set_of({}), set_of({})}),
      sample(300, {set_of({2}), set_of({}), set_of({})}),
      sample(400, {set_of({2}), set_of({2}), set_of({})}),
  };
  auto q = compute_qos(f, {{2, 100}}, samples);
  ASSERT_EQ(q.detections.size(), 1u);
  ASSERT_TRUE(q.detections[0].first_suspect_delay.has_value());
  ASSERT_TRUE(q.detections[0].all_suspect_delay.has_value());
  EXPECT_EQ(*q.detections[0].first_suspect_delay, 100);
  EXPECT_EQ(*q.detections[0].all_suspect_delay, 300);
}

TEST(Qos, UndetectedCrashHasNoDelay) {
  auto f = facts({2}, 300);
  std::vector<FdSample> samples = {
      sample(100, {set_of({}), set_of({}), set_of({})}),
      sample(200, {set_of({}), set_of({}), set_of({})}),
  };
  auto q = compute_qos(f, {{2, 50}}, samples);
  EXPECT_FALSE(q.detections[0].all_suspect_delay.has_value());
  EXPECT_FALSE(q.detections[0].first_suspect_delay.has_value());
}

TEST(Qos, MistakeEpisodesAndDuration) {
  // All correct; p0 falsely suspects p1 during [200, 400): one episode of
  // 200us.
  auto f = facts({}, 600);
  std::vector<FdSample> samples = {
      sample(100, {set_of({}), set_of({}), set_of({})}),
      sample(200, {set_of({1}), set_of({}), set_of({})}),
      sample(300, {set_of({1}), set_of({}), set_of({})}),
      sample(400, {set_of({}), set_of({}), set_of({})}),
      sample(500, {set_of({}), set_of({}), set_of({})}),
  };
  auto q = compute_qos(f, {}, samples);
  EXPECT_EQ(q.mistake_episodes, 1);
  EXPECT_DOUBLE_EQ(q.mean_mistake_duration_us, 200.0);
  // 15 (sample,observer) pairs, 2 of them dirty.
  EXPECT_NEAR(q.query_accuracy, 13.0 / 15.0, 1e-9);
}

TEST(Qos, RepeatedFlappingCountsEachEpisode) {
  auto f = facts({}, 600);
  std::vector<FdSample> samples = {
      sample(100, {set_of({1}), set_of({}), set_of({})}),
      sample(200, {set_of({}), set_of({}), set_of({})}),
      sample(300, {set_of({1}), set_of({}), set_of({})}),
      sample(400, {set_of({}), set_of({}), set_of({})}),
  };
  auto q = compute_qos(f, {}, samples);
  EXPECT_EQ(q.mistake_episodes, 2);
  EXPECT_GT(q.mistakes_per_second, 0);
}

TEST(Qos, SuspectingAFaultyProcessIsNotAMistake) {
  auto f = facts({2}, 300);
  std::vector<FdSample> samples = {
      sample(100, {set_of({2}), set_of({2}), set_of({})}),
      sample(200, {set_of({2}), set_of({2}), set_of({})}),
  };
  auto q = compute_qos(f, {{2, 50}}, samples);
  EXPECT_EQ(q.mistake_episodes, 0);
  EXPECT_DOUBLE_EQ(q.query_accuracy, 1.0);
}

TEST(Qos, LiveHeartbeatRunHasCleanMetricsAfterGst) {
  // Integration: heartbeat ◇P, one crash, synchrony from the start. No
  // false suspicions expected at all; detection within a few periods.
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.seed = 5;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = 0;
  cfg.delta = msec(5);
  auto sys = make_system(cfg);
  FdProbe probe(*sys, msec(5));
  for (ProcessId p = 0; p < 4; ++p) {
    auto& hb = sys->host(p).emplace<fd::HeartbeatP>();
    probe.attach(p, &hb, nullptr);
  }
  sys->crash_at(2, sec(1));
  probe.start(sec(3));
  sys->start();
  sys->run_until(sec(3));

  RunFacts f;
  f.n = 4;
  f.correct = ProcessSet::full(4);
  f.correct.remove(2);
  f.end_time = sec(3);
  auto q = compute_qos(f, {{2, sec(1)}}, probe.samples());
  EXPECT_EQ(q.mistake_episodes, 0);
  EXPECT_DOUBLE_EQ(q.query_accuracy, 1.0);
  ASSERT_TRUE(q.detections[0].all_suspect_delay.has_value());
  EXPECT_LT(*q.detections[0].all_suspect_delay, msec(100));
}

}  // namespace
}  // namespace ecfd
