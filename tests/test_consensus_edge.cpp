// Edge cases and robustness tests for the ◇C-consensus engine beyond the
// main suites: value extremes, tiny systems, windowed stability (the
// Section 2.2 remark), the tie-break refinement, and the EfficientP stack
// end to end.
#include <gtest/gtest.h>

#include <limits>

#include "broadcast/reliable_broadcast.hpp"
#include "consensus/harness.hpp"
#include "core/consensus_c.hpp"
#include "core/ecfd_compose.hpp"
#include "fd/efficient_p.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/omega_from_s.hpp"
#include "fd/scripted_fd.hpp"

namespace ecfd::consensus {
namespace {

struct Cluster {
  std::unique_ptr<System> sys;
  std::vector<std::shared_ptr<void>> keepalive;
  std::vector<core::ConsensusC*> cons;
};

/// Stable-from-t0 scripted ◇C cluster.
Cluster make_stable_cluster(int n, std::uint64_t seed,
                            core::ConsensusC::Config cc = {}) {
  ScenarioConfig sc;
  sc.n = n;
  sc.seed = seed;
  sc.links = LinkKind::kPartialSync;
  sc.gst = 0;
  sc.delta = msec(5);
  Cluster c;
  c.sys = make_system(sc);
  for (ProcessId p = 0; p < n; ++p) {
    auto& scripted = c.sys->host(p).emplace<fd::ScriptedFd>(
        fd::stable_script(n, p, ProcessSet(n), 0, 0));
    auto oracle =
        std::make_shared<core::EcfdFromSAndOmega>(&scripted, &scripted);
    c.keepalive.push_back(oracle);
    auto& rb = c.sys->host(p).emplace<broadcast::ReliableBroadcast>();
    c.cons.push_back(
        &c.sys->host(p).emplace<core::ConsensusC>(oracle.get(), &rb, cc));
  }
  return c;
}

TEST(ConsensusEdge, ExtremeValuesSurviveTheProtocol) {
  const Value extremes[] = {std::numeric_limits<Value>::min(),
                            std::numeric_limits<Value>::max(), 0, -1};
  auto c = make_stable_cluster(4, 1);
  c.sys->start();
  for (ProcessId p = 0; p < 4; ++p) c.cons[p]->propose(extremes[p]);
  c.sys->run_until(sec(5));
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(c.cons[p]->has_decided());
    EXPECT_EQ(c.cons[p]->decision()->value, c.cons[0]->decision()->value);
  }
  // Validity: the decision is one of the proposals.
  bool found = false;
  for (Value v : extremes) {
    if (v == c.cons[0]->decision()->value) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ConsensusEdge, TwoProcessSystemDecides) {
  // n=2: majority is 2, so f < n/2 means NO crash tolerance — but the
  // failure-free run must decide.
  auto c = make_stable_cluster(2, 2);
  c.sys->start();
  c.cons[0]->propose(1);
  c.cons[1]->propose(2);
  c.sys->run_until(sec(5));
  ASSERT_TRUE(c.cons[0]->has_decided() && c.cons[1]->has_decided());
  EXPECT_EQ(c.cons[0]->decision()->value, c.cons[1]->decision()->value);
}

TEST(ConsensusEdge, SingleProcessSystemDecidesAlone) {
  auto c = make_stable_cluster(1, 3);
  c.sys->start();
  c.cons[0]->propose(7);
  c.sys->run_until(sec(1));
  ASSERT_TRUE(c.cons[0]->has_decided());
  EXPECT_EQ(c.cons[0]->decision()->value, 7);
}

TEST(ConsensusEdge, DeprioritizedValueLosesTimestampTies) {
  core::ConsensusC::Config cc;
  cc.deprioritized = 0;  // "no-op" stand-in
  auto c = make_stable_cluster(4, 4, cc);
  c.sys->start();
  // The leader proposes the deprioritized value; someone else proposes a
  // real one. The real one must win the round-1 tie.
  c.cons[0]->propose(0);
  c.cons[1]->propose(42);
  c.cons[2]->propose(0);
  c.cons[3]->propose(0);
  c.sys->run_until(sec(5));
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_TRUE(c.cons[p]->has_decided());
    EXPECT_EQ(c.cons[p]->decision()->value, 42);
  }
}

TEST(ConsensusEdge, WithoutDeprioritizationLeaderValueWins) {
  auto c = make_stable_cluster(4, 5);
  c.sys->start();
  c.cons[0]->propose(0);
  c.cons[1]->propose(42);
  c.cons[2]->propose(0);
  c.cons[3]->propose(0);
  c.sys->run_until(sec(5));
  ASSERT_TRUE(c.cons[0]->has_decided());
  // Default tie-break keeps the first recorded estimate — the leader's
  // own — so the decision is 0 (documents the behaviour LogReplica fixes).
  EXPECT_EQ(c.cons[0]->decision()->value, 0);
}

TEST(ConsensusEdge, WindowedStabilityEventuallySuffices) {
  // Section 2.2: a unique leader "for long enough periods" is enough even
  // if permanent stability never happens. 60ms stable / 60ms chaos.
  const int n = 5;
  ScenarioConfig sc;
  sc.n = n;
  sc.seed = 6;
  sc.links = LinkKind::kPartialSync;
  sc.gst = 0;
  sc.delta = msec(5);
  auto sys = make_system(sc);
  std::vector<std::shared_ptr<void>> keepalive;
  std::vector<core::ConsensusC*> cons;
  for (ProcessId p = 0; p < n; ++p) {
    std::vector<fd::ScriptedFd::Step> steps;
    ProcessSet none(n);
    ProcessSet chaos = ProcessSet::full(n);
    chaos.remove(p);
    for (TimeUs t = 0; t < sec(10); t += msec(120)) {
      steps.push_back({t, none, 0});
      steps.push_back({t + msec(60), chaos, p});
    }
    auto& scripted = sys->host(p).emplace<fd::ScriptedFd>(steps);
    auto oracle =
        std::make_shared<core::EcfdFromSAndOmega>(&scripted, &scripted);
    keepalive.push_back(oracle);
    auto& rb = sys->host(p).emplace<broadcast::ReliableBroadcast>();
    cons.push_back(&sys->host(p).emplace<core::ConsensusC>(oracle.get(), &rb));
  }
  sys->start();
  for (ProcessId p = 0; p < n; ++p) cons[static_cast<std::size_t>(p)]->propose(100 + p);
  sys->run_until(sec(10));
  for (ProcessId p = 0; p < n; ++p) {
    ASSERT_TRUE(cons[static_cast<std::size_t>(p)]->has_decided()) << "p" << p;
    EXPECT_EQ(cons[static_cast<std::size_t>(p)]->decision()->value,
              cons[0]->decision()->value);
  }
}

TEST(ConsensusEdge, EfficientPStackEndToEnd) {
  // The §4 piggyback detector driving the paper's consensus: the whole
  // "cheapest possible" stack.
  const int n = 5;
  ScenarioConfig sc;
  sc.n = n;
  sc.seed = 7;
  sc.links = LinkKind::kPartialSync;
  sc.gst = msec(150);
  sc.delta = msec(5);
  sc.with_crash(0, msec(400));
  auto sys = make_system(sc);
  std::vector<core::ConsensusC*> cons;
  std::vector<fd::EfficientP*> fds;
  for (ProcessId p = 0; p < n; ++p) {
    fds.push_back(&sys->host(p).emplace<fd::EfficientP>());
  }
  for (ProcessId p = 0; p < n; ++p) {
    auto& rb = sys->host(p).emplace<broadcast::ReliableBroadcast>();
    cons.push_back(&sys->host(p).emplace<core::ConsensusC>(
        fds[static_cast<std::size_t>(p)], &rb));
  }
  sys->start();
  for (ProcessId p = 0; p < n; ++p) cons[static_cast<std::size_t>(p)]->propose(100 + p);
  sys->run_until(sec(30));
  for (ProcessId p = 1; p < n; ++p) {
    ASSERT_TRUE(cons[static_cast<std::size_t>(p)]->has_decided()) << "p" << p;
    EXPECT_EQ(cons[static_cast<std::size_t>(p)]->decision()->value,
              cons[1]->decision()->value);
  }
}

TEST(ConsensusEdge, FullAsynchronousConstructionChain) {
  // Section 3's asynchronous route end to end: a ◇S detector (heartbeat),
  // the Chu-style ◇S→Omega reduction, the ◇S+Omega→◇C composition, and
  // the Figs. 3-4 consensus on top — four layers, no scripting.
  const int n = 5;
  ScenarioConfig sc;
  sc.n = n;
  sc.seed = 9;
  sc.links = LinkKind::kPartialSync;
  sc.gst = msec(150);
  sc.delta = msec(5);
  sc.with_crash(1, msec(300));
  auto sys = make_system(sc);
  std::vector<std::shared_ptr<void>> keepalive;
  std::vector<core::ConsensusC*> cons;
  for (ProcessId p = 0; p < n; ++p) {
    auto& hb = sys->host(p).emplace<fd::HeartbeatP>();
    auto& omega = sys->host(p).emplace<fd::OmegaFromS>(&hb);
    auto oracle = std::make_shared<core::EcfdFromSAndOmega>(&hb, &omega);
    keepalive.push_back(oracle);
    auto& rb = sys->host(p).emplace<broadcast::ReliableBroadcast>();
    cons.push_back(&sys->host(p).emplace<core::ConsensusC>(oracle.get(), &rb));
  }
  sys->start();
  for (ProcessId p = 0; p < n; ++p) cons[static_cast<std::size_t>(p)]->propose(100 + p);
  sys->run_until(sec(30));
  for (ProcessId p = 0; p < n; ++p) {
    if (p == 1) continue;
    ASSERT_TRUE(cons[static_cast<std::size_t>(p)]->has_decided()) << "p" << p;
    EXPECT_EQ(cons[static_cast<std::size_t>(p)]->decision()->value,
              cons[0]->decision()->value);
  }
}

TEST(ConsensusEdge, RepeatedProposeIsIgnored) {
  auto c = make_stable_cluster(3, 8);
  c.sys->start();
  c.cons[0]->propose(1);
  c.cons[0]->propose(99);  // must be a no-op
  c.cons[1]->propose(2);
  c.cons[2]->propose(3);
  c.sys->run_until(sec(5));
  ASSERT_TRUE(c.cons[0]->has_decided());
  EXPECT_NE(c.cons[0]->decision()->value, 99);
}

}  // namespace
}  // namespace ecfd::consensus
