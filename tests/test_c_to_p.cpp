// Tests for the paper's Fig. 2 algorithm: transforming ◇C into ◇P in
// partial synchrony (Theorem 1).
#include "core/c_to_p.hpp"

#include <gtest/gtest.h>

#include "fd/leader_candidate.hpp"
#include "fd/scripted_fd.hpp"
#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::holds_with_margin;
using testutil::run_fd_scenario;

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(250), msec(50));
}

/// Installs a scripted Omega (common leader from `stable_at`) + CToP.
testutil::Installer scripted_installer(int n, ProcessId leader,
                                       TimeUs stable_at) {
  return [n, leader, stable_at](ProcessHost& host, ProcessId p,
                                std::vector<std::shared_ptr<void>>&) {
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, ProcessSet(n), p});  // everyone trusts itself first
    steps.push_back({stable_at, ProcessSet(n), leader});
    auto& omega = host.emplace<fd::ScriptedFd>(steps);
    auto& ctp = host.emplace<core::CToP>(&omega);
    return testutil::OracleRefs{&ctp, nullptr};
  };
}

/// Installs a real LeaderCandidate Omega + CToP (the full stack).
testutil::Installer real_installer() {
  return [](ProcessHost& host, ProcessId,
            std::vector<std::shared_ptr<void>>&) {
    auto& omega = host.emplace<fd::LeaderCandidate>();
    auto& ctp = host.emplace<core::CToP>(&omega);
    return testutil::OracleRefs{&ctp, nullptr};
  };
}

TEST(CToP, Theorem1OutputIsEventuallyPerfect) {
  auto cfg = base_scenario(5, 1);
  cfg.with_crash(2, msec(800)).with_crash(4, sec(1));
  auto res = run_fd_scenario(cfg, scripted_installer(5, 0, msec(300)),
                             sec(6));
  EXPECT_TRUE(res.report.is_eventually_perfect())
      << "SC=" << res.report.strong_completeness.holds
      << " ESA=" << res.report.eventual_strong_accuracy.holds;
  EXPECT_TRUE(holds_with_margin(res.report.strong_completeness, res.horizon,
                                sec(1)));
}

TEST(CToP, WorksOnTopOfRealOmega) {
  auto cfg = base_scenario(5, 2);
  cfg.with_crash(3, sec(1));
  auto res = run_fd_scenario(cfg, real_installer(), sec(8));
  EXPECT_TRUE(res.report.is_eventually_perfect());
}

TEST(CToP, SurvivesLeaderCrash) {
  // The scripted leader is p0 until it crashes; afterwards the script
  // moves everyone to p1. The transformation must re-stabilize.
  const int n = 5;
  auto cfg = base_scenario(n, 3);
  cfg.with_crash(0, sec(1));
  auto install = [n](ProcessHost& host, ProcessId p,
                     std::vector<std::shared_ptr<void>>&) {
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, ProcessSet(n), p});
    steps.push_back({msec(300), ProcessSet(n), 0});
    steps.push_back({sec(1) + msec(200), ProcessSet(n), 1});
    auto& omega = host.emplace<fd::ScriptedFd>(steps);
    auto& ctp = host.emplace<core::CToP>(&omega);
    return testutil::OracleRefs{&ctp, nullptr};
  };
  auto res = run_fd_scenario(cfg, install, sec(8));
  EXPECT_TRUE(res.report.is_eventually_perfect());
}

TEST(CToP, SteadyStateCostIs2NMinus1) {
  // Section 4: once the leader is stable, 2(n-1) messages per period —
  // n-1 lists from the leader, n-1 I-AM-ALIVEs to it.
  const int n = 8;
  auto cfg = base_scenario(n, 4);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  for (ProcessId p = 0; p < n; ++p) {
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, ProcessSet(n), 0});  // p0 is leader from the start
    auto& omega = sys->host(p).emplace<fd::ScriptedFd>(steps);
    sys->host(p).emplace<core::CToP>(&omega);
  }
  sys->start();
  sys->run_until(sec(2));
  const auto lists = sys->counters().get("msg.ctp.list.sent");
  const auto alives = sys->counters().get("msg.ctp.alive.sent");
  core::CToP::Config defaults;
  const double periods = static_cast<double>(sec(2)) / defaults.list_period;
  EXPECT_NEAR(static_cast<double>(lists), periods * (n - 1),
              periods * (n - 1) * 0.05);
  EXPECT_NEAR(static_cast<double>(alives), periods * (n - 1),
              periods * (n - 1) * 0.05);
}

TEST(CToP, EventuallyOnlyLeaderLinksCarryMessages) {
  // With a stable leader, every message involves the leader as source or
  // destination — the "eventually only these links carry messages" claim.
  const int n = 5;
  auto cfg = base_scenario(n, 5);
  auto sys = make_system(cfg);
  for (ProcessId p = 0; p < n; ++p) {
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, ProcessSet(n), 2});  // p2 stable leader
    auto& omega = sys->host(p).emplace<fd::ScriptedFd>(steps);
    sys->host(p).emplace<core::CToP>(&omega);
  }
  sys->start();
  sys->run_until(sec(1));
  // Non-leaders never broadcast lists (they never consider themselves
  // leader), and all alive messages target p2: total = lists(n-1 per
  // period, from p2) + alives(n-1 per period, to p2). Verify no alive
  // message was sent to a non-leader by checking totals match exactly.
  const auto lists = sys->counters().get("msg.ctp.list.sent");
  const auto alives = sys->counters().get("msg.ctp.alive.sent");
  EXPECT_GT(lists, 0);
  EXPECT_NEAR(static_cast<double>(lists), static_cast<double>(alives),
              static_cast<double>(alives) * 0.1);
}

TEST(CToP, ToleratesFairLossyLeaderOutputLinks) {
  // Section 4's link requirements: leader input links partially
  // synchronous, leader OUTPUT links merely fair. Drop 40% of the
  // leader's list messages; ◇P must still hold.
  const int n = 5;
  const ProcessId leader = 0;
  auto cfg = base_scenario(n, 6);
  cfg.with_crash(3, sec(1));
  auto sys = make_system(cfg);
  for (ProcessId d = 0; d < n; ++d) {
    if (d == leader) continue;
    FairLossyLink::Config lossy;
    lossy.loss_p = 0.4;
    lossy.force_deliver_every = 5;
    sys->network().set_link(leader, d,
                            std::make_unique<FairLossyLink>(lossy));
  }
  FdProbe probe(*sys, msec(5));
  for (ProcessId p = 0; p < n; ++p) {
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, ProcessSet(n), leader});
    auto& omega = sys->host(p).emplace<fd::ScriptedFd>(steps);
    auto& ctp = sys->host(p).emplace<core::CToP>(&omega);
    probe.attach(p, &ctp, nullptr);
  }
  probe.start(sec(6));
  sys->start();
  sys->run_until(sec(6));

  RunFacts facts;
  facts.n = n;
  facts.correct = ProcessSet::full(n);
  facts.correct.remove(3);
  facts.end_time = sec(6);
  FdReport report = check_fd_properties(facts, probe.samples());
  EXPECT_TRUE(report.is_eventually_perfect())
      << "fairness of output links suffices for list adoption";
}

TEST(CToP, ActingLeaderFlagTracksTrustedSelf) {
  const int n = 3;
  auto cfg = base_scenario(n, 7);
  auto sys = make_system(cfg);
  std::vector<core::CToP*> ctps;
  for (ProcessId p = 0; p < n; ++p) {
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, ProcessSet(n), 1});
    auto& omega = sys->host(p).emplace<fd::ScriptedFd>(steps);
    ctps.push_back(&sys->host(p).emplace<core::CToP>(&omega));
  }
  sys->start();
  sys->run_until(msec(200));
  EXPECT_TRUE(ctps[1]->acting_leader());
  EXPECT_FALSE(ctps[0]->acting_leader());
  EXPECT_FALSE(ctps[2]->acting_leader());
}

}  // namespace
}  // namespace ecfd
