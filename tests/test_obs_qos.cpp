// Tests for the online per-peer QoS scoreboard (obs/qos.hpp): exact
// estimator arithmetic on synthetic event streams, metrics-registry
// integration, and the ground-truth validation that matters — the T_D the
// scoreboard computes from recorded kCrash/kSuspect transitions must agree
// with the detection intervals the fuzzer's property monitor witnessed
// (within the monitor's sampling quantization), across fuzz seeds. The
// recorder must also stay digest-invisible: attaching one to a fuzz case
// must not change the pinned outcome digest.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "obs/metrics.hpp"
#include "obs/qos.hpp"
#include "obs/recorder.hpp"
#include "runner/thread_pool.hpp"

namespace ecfd::check {
namespace {

obs::Event ev(TimeUs t, int host, obs::EventType type, int a = -1) {
  obs::Event e;
  e.time = t;
  e.host = host;
  e.type = type;
  e.a = a;
  return e;
}

// --- estimator arithmetic ---------------------------------------------

TEST(QosScoreboard, MistakeDurationAndRecurrenceAreExact) {
  obs::QosScoreboard sb(3);
  sb.ingest(ev(100, 0, obs::EventType::kSuspect, 1));
  sb.ingest(ev(400, 0, obs::EventType::kUnsuspect, 1));
  sb.ingest(ev(1000, 0, obs::EventType::kSuspect, 1));
  sb.ingest(ev(1200, 0, obs::EventType::kUnsuspect, 1));
  sb.finalize(2000);

  const obs::QosCell& c = sb.cell(0, 1);
  EXPECT_EQ(c.suspicions, 2);
  EXPECT_EQ(c.mistakes, 2);
  EXPECT_EQ(c.mistake_dur_sum_us, 300 + 200);
  EXPECT_DOUBLE_EQ(c.mean_mistake_us(), 250.0);
  EXPECT_EQ(c.recurrences, 1);
  EXPECT_DOUBLE_EQ(c.mean_recurrence_us(), 900.0);  // start-to-start
  EXPECT_EQ(c.detections, 0);
  EXPECT_DOUBLE_EQ(c.mean_detection_us(), -1.0);  // no samples

  // P_A: 500us of false suspicion over the [100, 2000] window.
  const double pa = sb.query_accuracy(0, 1);
  EXPECT_NEAR(pa, 1.0 - 500.0 / 1900.0, 1e-12);
  EXPECT_DOUBLE_EQ(sb.query_accuracy(2, 1), 1.0);  // untouched pair
}

TEST(QosScoreboard, DetectionAfterCrashIsNotAMistake) {
  obs::QosScoreboard sb(3);
  sb.ingest(ev(1000, 2, obs::EventType::kCrash));
  sb.ingest(ev(1500, 0, obs::EventType::kSuspect, 2));
  sb.ingest(ev(1600, 1, obs::EventType::kSuspect, 2));
  sb.finalize(5000);

  EXPECT_EQ(sb.crash_time(2), 1000);
  EXPECT_EQ(sb.cell(0, 2).detections, 1);
  EXPECT_DOUBLE_EQ(sb.cell(0, 2).mean_detection_us(), 500.0);
  EXPECT_DOUBLE_EQ(sb.cell(1, 2).mean_detection_us(), 600.0);
  EXPECT_EQ(sb.cell(0, 2).mistakes, 0);
  EXPECT_EQ(sb.cell(0, 2).mistake_time_us, 0);
  // Suspecting the dead never costs accuracy.
  EXPECT_DOUBLE_EQ(sb.query_accuracy(0, 2), 1.0);
}

TEST(QosScoreboard, PrematureSuspicionSplitsAtTheCrash) {
  // Suspicion opens while the peer is alive, the peer then dies, the
  // suspicion is retracted later: only the pre-crash part is a mistake,
  // and the pair still counts as a (zero-latency) detection.
  obs::QosScoreboard sb(2);
  sb.ingest(ev(900, 0, obs::EventType::kSuspect, 1));
  sb.ingest(ev(1000, 1, obs::EventType::kCrash));
  sb.ingest(ev(1500, 0, obs::EventType::kUnsuspect, 1));
  sb.finalize(2000);

  const obs::QosCell& c = sb.cell(0, 1);
  EXPECT_EQ(c.mistakes, 1);
  EXPECT_EQ(c.mistake_dur_sum_us, 100);  // 900 -> crash at 1000
  EXPECT_EQ(c.detections, 1);
  EXPECT_EQ(c.detection_sum_us, 0);  // already suspected when it died
}

TEST(QosScoreboard, FinalizeChargesOpenEpisodesWithoutClosingThem) {
  obs::QosScoreboard sb(2);
  sb.ingest(ev(100, 0, obs::EventType::kSuspect, 1));
  sb.finalize(600);
  const obs::QosCell& c = sb.cell(0, 1);
  EXPECT_EQ(c.mistakes, 0);  // never retracted: not a closed episode
  EXPECT_EQ(c.mistake_time_us, 500);  // but P_A pays for it
  EXPECT_DOUBLE_EQ(sb.query_accuracy(0, 1), 0.0);
}

TEST(QosScoreboard, DuplicateSuspectTransitionsKeepTheFirstOnset) {
  obs::QosScoreboard sb(2);
  sb.ingest(ev(100, 0, obs::EventType::kSuspect, 1));
  sb.ingest(ev(200, 0, obs::EventType::kSuspect, 1));  // duplicate
  sb.ingest(ev(300, 0, obs::EventType::kUnsuspect, 1));
  sb.finalize(1000);
  EXPECT_EQ(sb.cell(0, 1).suspicions, 1);
  EXPECT_EQ(sb.cell(0, 1).mistake_dur_sum_us, 200);
}

// --- metrics integration ----------------------------------------------

TEST(QosScoreboard, BindsCountersHistogramsAndGauges) {
  obs::MetricsRegistry reg;
  obs::QosScoreboard sb(3);
  sb.bind_metrics(&reg);
  sb.ingest(ev(100, 0, obs::EventType::kSuspect, 1));
  sb.ingest(ev(400, 0, obs::EventType::kUnsuspect, 1));
  sb.ingest(ev(1000, 2, obs::EventType::kCrash));
  sb.ingest(ev(1700, 0, obs::EventType::kSuspect, 2));

  EXPECT_EQ(reg.get("qos.suspicions"), 2);
  EXPECT_EQ(reg.get("qos.mistakes"), 1);
  EXPECT_EQ(reg.get("qos.detections"), 1);
  EXPECT_EQ(reg.histogram("qos.mistake_duration_us")->count(), 1);
  EXPECT_EQ(reg.histogram("qos.mistake_duration_us")->sum(), 300);
  EXPECT_EQ(reg.histogram("qos.detection_us")->sum(), 700);

  sb.export_gauges(/*self=*/0, /*now=*/2000);
  EXPECT_EQ(reg.gauge_value("qos.suspected.p2"), 1);
  EXPECT_EQ(reg.gauge_value("qos.suspected.p1"), 0);
  // 300us of mistakes against p1 over the [100, 2000] window.
  const std::int64_t pa_ppm = reg.gauge_value("qos.pa_ppm.p1");
  EXPECT_GT(pa_ppm, 800'000);
  EXPECT_LT(pa_ppm, 1'000'000);
}

TEST(QosScoreboard, WriteTableIsDeterministicAndSkipsIdlePairs) {
  obs::QosScoreboard sb(4);
  sb.ingest(ev(100, 0, obs::EventType::kSuspect, 1));
  sb.ingest(ev(300, 0, obs::EventType::kUnsuspect, 1));
  sb.finalize(1000);
  std::ostringstream a;
  std::ostringstream b;
  sb.write_table(a);
  sb.write_table(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("p0"), std::string::npos);
  // Only the (0,1) pair had activity: header + one row.
  int lines = 0;
  for (const char ch : a.str()) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2);
}

// --- ground truth: the fuzzer's monitor witnesses ----------------------
//
// For every crash the monitor saw, compare the scoreboard's event-exact
// detection time (recorded kSuspect minus recorded kCrash) against the
// monitor's sampled interval (first suspecting snapshot minus first
// crashed snapshot). Both ends of the monitor interval are quantized up
// by at most one monitor period, so the two must agree within 10% plus
// two periods of slack.

struct TdCheck {
  int compared{0};
  int outside{0};
  int violations{0};
  std::string detail;
};

TdCheck check_seed(FuzzProfile profile, std::uint64_t seed) {
  FuzzCaseConfig cfg;
  cfg.profile = profile;
  cfg.seed = seed;
  const FaultSchedule schedule = generate_schedule(cfg);
  obs::Recorder rec(4096);
  const FuzzOutcome out = run_fuzz_case(cfg, schedule, &rec);

  obs::QosScoreboard sb(cfg.n);
  sb.ingest_all(rec.merged());
  sb.finalize(out.sim_end);

  TdCheck r;
  r.violations = static_cast<int>(out.violations.size());
  const double slack =
      2.0 * static_cast<double>(cfg.monitor_period) + 1000.0;
  for (const auto& w : out.detections) {
    for (int q = 0; q < cfg.n; ++q) {
      const TimeUs first = w.first_suspect[static_cast<std::size_t>(q)];
      if (first == kTimeNever) continue;
      const double witness_td = static_cast<double>(first - w.crashed_seen);
      const obs::QosCell& c = sb.cell(q, w.victim);
      if (c.detections == 0) {
        ++r.outside;
        r.detail += profile_name(profile) + std::string(" seed ") +
                    std::to_string(seed) + ": p" + std::to_string(q) +
                    " never detected p" + std::to_string(w.victim) +
                    " on the scoreboard\n";
        continue;
      }
      const double sb_td = c.mean_detection_us();
      ++r.compared;
      const double tol = 0.1 * std::max(witness_td, sb_td) + slack;
      if (sb_td > witness_td + tol || sb_td < witness_td - tol) {
        ++r.outside;
        r.detail += profile_name(profile) + std::string(" seed ") +
                    std::to_string(seed) + ": p" + std::to_string(q) +
                    " detects p" + std::to_string(w.victim) +
                    " scoreboard=" + std::to_string(sb_td) +
                    "us witness=" + std::to_string(witness_td) + "us\n";
      }
    }
  }
  return r;
}

void run_campaign(int seeds) {
#if defined(ECFD_OBS_DISABLED)
  (void)seeds;
  GTEST_SKIP() << "ground truth needs recorded transitions (ECFD_OBS=ON)";
#else
  const FuzzProfile profiles[] = {FuzzProfile::kCrash, FuzzProfile::kChurn};
  std::vector<TdCheck> results(
      static_cast<std::size_t>(seeds) * std::size(profiles));
  runner::parallel_for(results.size(), runner::ThreadPool::default_threads(),
                       [&](std::size_t i) {
                         const FuzzProfile prof =
                             profiles[i / static_cast<std::size_t>(seeds)];
                         const std::uint64_t seed =
                             1 + i % static_cast<std::size_t>(seeds);
                         results[i] = check_seed(prof, seed);
                       });
  int compared = 0;
  for (const TdCheck& r : results) {
    compared += r.compared;
    EXPECT_EQ(r.violations, 0);
    if (r.outside > 0) ADD_FAILURE() << r.detail;
  }
  // The crash profiles guarantee real detections to compare against.
  EXPECT_GT(compared, seeds);
#endif
}

TEST(QosFuzz, DetectionTimesMatchMonitorWitnesses) { run_campaign(6); }

// The 100-seed acceptance campaign (ctest entry test_obs_qos_campaign,
// labels fuzz;slow): 50 crash + 50 churn seeds.
TEST(QosFuzz, CampaignDetectionTimesMatchMonitorWitnesses) {
  run_campaign(50);
}

// --- digest invisibility ----------------------------------------------

TEST(QosFuzz, RecorderAttachmentDoesNotChangeTheDigest) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    FuzzCaseConfig cfg;
    cfg.profile = FuzzProfile::kChurn;
    cfg.seed = seed;
    const FaultSchedule schedule = generate_schedule(cfg);
    const FuzzOutcome bare = run_fuzz_case(cfg, schedule);
    obs::Recorder rec(4096);
    const FuzzOutcome traced = run_fuzz_case(cfg, schedule, &rec);
    EXPECT_EQ(bare.digest, traced.digest) << "seed " << seed;
    EXPECT_GT(rec.merged().size(), 0u) << "recorder saw nothing";
  }
}

}  // namespace
}  // namespace ecfd::check
