#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

/// \file table.hpp
/// Minimal fixed-width table printer shared by the experiment binaries, so
/// every bench emits its results in the same readable layout.

namespace ecfd::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) {
      std::cout << std::setw(width_) << h;
    }
    std::cout << '\n';
    std::cout << std::string(headers_.size() * static_cast<std::size_t>(width_), '-')
              << '\n';
  }

  template <class... Cells>
  void print_row(const Cells&... cells) const {
    (print_cell(cells), ...);
    std::cout << '\n';
  }

 private:
  template <class T>
  void print_cell(const T& value) const {
    std::ostringstream os;
    if constexpr (std::is_floating_point_v<T>) {
      os << std::fixed << std::setprecision(1) << value;
    } else {
      os << value;
    }
    std::cout << std::setw(width_) << os.str();
  }

  std::vector<std::string> headers_;
  int width_;
};

inline void section(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

}  // namespace ecfd::bench
