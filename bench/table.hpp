#pragma once

#include <unistd.h>

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

/// \file table.hpp
/// Minimal fixed-width table printer shared by the experiment binaries, so
/// every bench emits its results in the same readable layout — and, when
/// run with `--json FILE`, the same results as a machine-readable document
/// (schema "ecfd.bench.v1": one object per table, headers + typed rows,
/// grouped under the section titles). Usage in a bench main:
///
///   int main(int argc, char** argv) {
///     ecfd::bench::init(argc, argv, "e4_detection_latency");
///     ...print tables as before...
///     return ecfd::bench::finish();
///   }
///
/// Everything printed through Table/section is mirrored into the JSON
/// sink; plain std::cout prose is console-only by design.

namespace ecfd::bench {

namespace detail {

/// Collects the JSON mirror of everything the bench prints.
struct JsonSink {
  bool active{false};
  std::string bench;
  std::string schema{"ecfd.bench.v1"};
  std::string path;
  std::string section;     ///< current section title
  std::string body;        ///< accumulated "tables" array contents
  bool any_table{false};
  bool in_table{false};    ///< a table object is open (awaiting rows)
  bool any_row{false};
};

inline JsonSink& sink() {
  static JsonSink s;
  return s;
}

inline void json_escape(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
}

inline void close_open_table() {
  JsonSink& s = sink();
  if (s.in_table) {
    s.body += "\n      ]\n    }";
    s.in_table = false;
  }
}

/// One cell as a JSON token: arithmetic values stay numbers, everything
/// else becomes a string.
template <class T>
std::string json_cell(const T& value) {
  if constexpr (std::is_arithmetic_v<T>) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    std::ostringstream os;
    os << value;
    std::string out = "\"";
    json_escape(&out, os.str());
    out += "\"";
    return out;
  }
}

}  // namespace detail

/// Parses bench-wide flags (currently `--json FILE`; "-" = stdout).
/// Call first in main(); unknown arguments are ignored so binaries keep
/// tolerating ad-hoc flags. Benches whose tables differ structurally from
/// the default experiment shape pass their own \p schema name (bench_net
/// emits "ecfd.bench_net.v1") so validators can gate each shape strictly.
inline void init(int argc, char** argv, const std::string& bench_name,
                 const std::string& schema = "ecfd.bench.v1") {
  auto& s = detail::sink();
  s.bench = bench_name;
  s.schema = schema;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      s.active = true;
      s.path = argv[i + 1];
    }
  }
}

/// Writes the JSON document if --json was given. Returns the process exit
/// code (0, or 2 when the output file cannot be written).
inline int finish() {
  auto& s = detail::sink();
  if (!s.active) return 0;
  detail::close_open_table();
  std::string j = "{\n  \"schema\": \"";
  detail::json_escape(&j, s.schema);
  j += "\",\n  \"bench\": \"";
  detail::json_escape(&j, s.bench);
  // Machine context, so checked-in baselines say what they were measured
  // on. Shape-gated (not value-gated) by tools/check_bench_schema.py.
  const long page = ::sysconf(_SC_PAGESIZE);
  j += "\",\n  \"host\": {\n    \"hardware_threads\": ";
  j += std::to_string(std::thread::hardware_concurrency());
  j += ",\n    \"page_size\": " + std::to_string(page > 0 ? page : 0);
  j += ",\n    \"build_type\": \"";
  // This project strips -DNDEBUG from Release flags (asserts stay on in
  // every build), so optimization level is the meaningful distinction.
#if defined(__OPTIMIZE__) || defined(NDEBUG)
  j += "release";
#else
  j += "debug";
#endif
  j += "\"\n  },\n  \"tables\": [";
  j += s.body;
  j += s.any_table ? "\n  ]\n}\n" : "]\n}\n";
  if (s.path == "-") {
    std::fputs(j.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", s.path.c_str());
    return 2;
  }
  std::fputs(j.c_str(), f);
  std::fclose(f);
  return 0;
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) {
      std::cout << std::setw(width_) << h;
    }
    std::cout << '\n';
    std::cout << std::string(headers_.size() * static_cast<std::size_t>(width_), '-')
              << '\n';
    auto& s = detail::sink();
    if (!s.active) return;
    detail::close_open_table();
    if (s.any_table) s.body += ",";
    s.any_table = true;
    s.in_table = true;
    s.any_row = false;
    s.body += "\n    {\n      \"section\": \"";
    detail::json_escape(&s.body, s.section);
    s.body += "\",\n      \"headers\": [";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      if (i) s.body += ", ";
      s.body += "\"";
      detail::json_escape(&s.body, headers_[i]);
      s.body += "\"";
    }
    s.body += "],\n      \"rows\": [";
  }

  template <class... Cells>
  void print_row(const Cells&... cells) const {
    (print_cell(cells), ...);
    std::cout << '\n';
    auto& s = detail::sink();
    if (!s.active || !s.in_table) return;
    if (s.any_row) s.body += ",";
    s.any_row = true;
    s.body += "\n        [";
    bool first = true;
    (
        [&] {
          if (!first) s.body += ", ";
          first = false;
          s.body += detail::json_cell(cells);
        }(),
        ...);
    s.body += "]";
  }

 private:
  template <class T>
  void print_cell(const T& value) const {
    std::ostringstream os;
    if constexpr (std::is_floating_point_v<T>) {
      os << std::fixed << std::setprecision(1) << value;
    } else {
      os << value;
    }
    std::cout << std::setw(width_) << os.str();
  }

  std::vector<std::string> headers_;
  int width_;
};

inline void section(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
  detail::sink().section = title;
}

}  // namespace ecfd::bench
