// E5 — Sections 5.2/5.4: end-to-end consensus latency and rounds under
// crashes, on a live failure-detector stack (no scripting).
//
// The ◇C algorithm and the MR Omega baseline keep deciding quickly because
// the coordinator comes straight from the detector's leader output; the
// rotating CT baseline pays extra rounds whenever rotation lands on a
// crashed or suspected process.

#include "consensus/harness.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;
using namespace ecfd::consensus;

struct Agg {
  double time_ms{0};
  double rounds{0};
  int ok{0};
};

Agg run_many(Algo algo, int n, int crashes, bool crash_low_ids) {
  Agg agg;
  constexpr int kSeeds = 5;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    HarnessConfig cfg;
    cfg.scenario.n = n;
    cfg.scenario.seed = 500 + s;
    cfg.scenario.links = LinkKind::kPartialSync;
    cfg.scenario.gst = msec(100);
    cfg.scenario.delta = msec(5);
    cfg.scenario.pre_gst_max = msec(40);
    cfg.algo = algo;
    cfg.fd = FdStack::kOmegaPlusHeartbeat;
    cfg.horizon = sec(60);
    for (int i = 0; i < crashes; ++i) {
      // Crashing low ids removes leaders / early coordinators; crashing
      // high ids is the easy case.
      const ProcessId victim = crash_low_ids ? i : n - 1 - i;
      // All crashes land before a typical decision (~120ms with GST=100ms)
      // so higher crash counts genuinely stress the run.
      cfg.scenario.with_crash(victim, msec(20) + i * msec(25));
    }
    const HarnessResult r = run_consensus(cfg);
    if (r.every_correct_decided && r.uniform_agreement && r.validity) {
      ++agg.ok;
      agg.time_ms += static_cast<double>(r.last_decision_at) / 1000.0;
      agg.rounds += r.min_decision_round;
    }
  }
  if (agg.ok > 0) {
    agg.time_ms /= agg.ok;
    agg.rounds /= agg.ok;
  }
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "e5_decision_latency");
  ecfd::bench::section(
      "E5: decision latency under crashes (live heartbeat+Omega stack)");
  std::cout << "mean over 5 seeds; time = last correct decision; crashes "
               "staggered from t=50ms; GST=100ms.\n";

  ecfd::bench::Table table({"algo", "n", "crashes", "where", "ok", "rounds",
                            "time_ms"});
  table.print_header();
  const int n = 7;
  struct AlgoRow {
    Algo algo;
    const char* name;
  };
  const AlgoRow algos[] = {{Algo::kEcfdC, "ecfd-C"},
                           {Algo::kChandraTouegS, "CT-diamondS"},
                           {Algo::kMrOmega, "MR-omega"}};
  for (const auto& a : algos) {
    for (int crashes : {0, 1, 3}) {
      for (bool low : {true, false}) {
        if (crashes == 0 && !low) continue;
        const Agg agg = run_many(a.algo, n, crashes, low);
        table.print_row(a.name, n, crashes, crashes == 0 ? "-" : (low ? "leaders" : "tail"),
                        agg.ok, agg.rounds, agg.time_ms);
      }
    }
  }
  std::cout << "\nShape check: leader-based algorithms (C, MR) keep low "
               "round counts even when low ids crash; CT pays extra rounds "
               "when rotation meets crashed coordinators.\n";
  return ecfd::bench::finish();
}
