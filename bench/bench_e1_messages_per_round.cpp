// E1 — Section 5.4: communication steps (phases) and messages per round.
//
// Paper's analysis (failure-free, stable detector, no RB messages counted):
//   ◇C-consensus          : 5 phases, ~4n messages per round
//   ◇C merged Phases 0+1  : 4 phases, Ω(n²) messages per round
//   Chandra-Toueg ◇S      : 4 phases, ~3n messages per round
//   Mostefaoui-Raynal Ω   : 3 phases, ~3n² (Θ(n²)) messages per round
//
// We run each algorithm failure-free with a detector that is stable from
// the start (every run decides in round 1) and report the measured
// messages for that single round next to the paper's model.

#include "consensus/harness.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;
using namespace ecfd::consensus;

HarnessResult run(Algo algo, int n, std::uint64_t seed) {
  HarnessConfig cfg;
  cfg.scenario.n = n;
  cfg.scenario.seed = seed;
  cfg.scenario.links = LinkKind::kPartialSync;
  cfg.scenario.gst = 0;
  cfg.scenario.delta = msec(5);
  cfg.algo = algo;
  cfg.fd = FdStack::kScriptedStable;
  cfg.fd_stable_at = 0;
  return run_consensus(cfg);
}

struct AlgoInfo {
  Algo algo;
  const char* name;
  int phases;
  const char* paper_model;
  double model(int n) const {
    switch (algo) {
      case Algo::kEcfdC: return 4.0 * (n - 1);
      case Algo::kEcfdCMerged: return static_cast<double>(n) * (n - 1) + 2.0 * (n - 1);
      case Algo::kChandraTouegS: return 3.0 * (n - 1);
      case Algo::kMrOmega: return static_cast<double>(n) * (n - 1) + 2.0 * (n - 1);
    }
    return 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "e1_messages_per_round");
  ecfd::bench::section(
      "E1: phases and messages per round (failure-free, stable FD)");
  std::cout << "Paper (Sec. 5.4): C=5 phases/Theta(n) msgs, CT=4/Theta(n), "
               "MR=3/Theta(n^2); merged C variant trades a phase for "
               "Omega(n^2) msgs.\nRB (decision diffusion) messages reported "
               "separately, as in the paper.\n";

  const AlgoInfo algos[] = {
      {Algo::kEcfdC, "ecfd-C", 5, "4(n-1)"},
      {Algo::kEcfdCMerged, "ecfd-C-merged", 4, "n(n-1)+2(n-1)"},
      {Algo::kChandraTouegS, "CT-diamondS", 4, "3(n-1)"},
      {Algo::kMrOmega, "MR-omega", 3, "n(n-1)+2(n-1)"},
  };

  ecfd::bench::Table table(
      {"algo", "n", "phases", "round", "msgs", "model", "msgs/n", "rb_msgs"});
  table.print_header();
  for (int n : {3, 5, 7, 9, 13}) {
    for (const AlgoInfo& a : algos) {
      const HarnessResult r = run(a.algo, n, 1000 + n);
      table.print_row(a.name, n, a.phases, r.min_decision_round,
                      r.consensus_msgs, a.model(n),
                      static_cast<double>(r.consensus_msgs) / n, r.rb_msgs);
    }
  }
  std::cout << "\nShape check: C and CT grow linearly in n; MR and the "
               "merged variant grow quadratically.\n";
  return ecfd::bench::finish();
}
