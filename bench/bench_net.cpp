// bench_net — the real-network path: poll(2) vs io_uring backends,
// single-frame vs coalesced batch-envelope datagrams.
//
// Three sections, each run for every {backend} x {coalesce} combination so
// the two optimizations are ablated independently (schema
// "ecfd.bench_net.v1", gated by tools/check_bench_schema.py --bench-net):
//
//   pair_throughput      one loopback sender floods one receiver; reports
//                        delivered frames/s and p50/p99 delivery latency,
//                        read from the receiver's log2 obs histogram cells
//                        (so percentiles are power-of-two resolution by
//                        construction).
//   storm                n nodes all-to-all flood; reports aggregate
//                        delivered frames/s and wire datagrams per frame
//                        (coalescing pushes the latter toward 1/k).
//   coalescing_ablation  E11: EfficientP heartbeats at a fixed period;
//                        reports steady-state datagrams per peer per tick
//                        (the paper's Section 4 k->1 claim carried to the
//                        wire) and the detection latency of a killed node,
//                        which must NOT regress when coalescing is on.
//
// Every combination row is always emitted; when io_uring is unavailable
// (ECFD_URING=OFF build, old kernel, seccomp) uring rows carry
// available=0 and zeroed measurements so checked-in baselines keep one
// shape everywhere. Nodes are threads, each owning its own env — the same
// one-loop-per-process model as separate OS processes, minus the fork
// plumbing.
//
//   bench_net [--quick] [--json FILE]
//
// --quick shortens every phase for CI smoke; the checked-in BENCH_NET.json
// comes from a full run (see EXPERIMENTS.md E10/E11).

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "table.hpp"
#include "fd/efficient_p.hpp"
#include "net/protocol_ids.hpp"
#include "obs/metrics.hpp"
#include "transport/dgram_env.hpp"
#include "transport/socket_env.hpp"
#if defined(ECFD_URING)
#include "transport/uring_env.hpp"
#endif

using namespace ecfd;
using transport::DgramEnv;
using transport::SocketEnv;

namespace {

/// Wall timestamps shared across envs (each env has its own epoch, so
/// cross-env latency must use one global clock).
std::int64_t wall_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<transport::PeerAddr> loopback_peers(int n, std::uint16_t base) {
  std::vector<transport::PeerAddr> peers;
  for (int i = 0; i < n; ++i) {
    peers.push_back({"127.0.0.1", static_cast<std::uint16_t>(base + i)});
  }
  return peers;
}

struct Combo {
  const char* backend;  ///< "poll" | "uring"
  bool coalesce;
};

constexpr Combo kCombos[] = {
    {"poll", false}, {"poll", true}, {"uring", false}, {"uring", true}};

DgramEnv::Options make_options(ProcessId self,
                               const std::vector<transport::PeerAddr>& peers,
                               bool coalesce) {
  DgramEnv::Options o;
  o.self = self;
  o.peers = peers;
  o.seed = 42;
  o.net.coalesce.enabled = coalesce;
  return o;
}

/// Builds the requested backend WITHOUT fallback: an ablation row labeled
/// "uring" must never silently measure poll. nullptr = unavailable.
std::unique_ptr<DgramEnv> make_exact(const char* backend,
                                     DgramEnv::Options opts) {
  if (std::strcmp(backend, "uring") == 0) {
#if defined(ECFD_URING)
    auto env = std::make_unique<transport::UringEnv>(std::move(opts));
    if (!env->open(nullptr)) return nullptr;
    return env;
#else
    return nullptr;
#endif
  }
  auto env = std::make_unique<SocketEnv>(std::move(opts));
  if (!env->open(nullptr)) return nullptr;
  return env;
}

bool uring_available() {
#if defined(ECFD_URING)
  const auto peers = loopback_peers(1, 23999);
  return make_exact("uring", make_options(0, peers, false)) != nullptr;
#else
  return false;
#endif
}

/// The flood protocol: senders burst timestamped frames every tick;
/// receivers histogram the wall-clock delivery latency.
class Flood final : public Protocol {
 public:
  Flood(Env& env, bool sender, int burst, DurUs tick)
      : Protocol(env, protocol_ids::kBenchNet),
        sender_(sender),
        burst_(burst),
        tick_(tick) {}

  void start() override {
    if (sender_) arm();
  }

  void on_message(const Message& m) override {
    received_.fetch_add(1, std::memory_order_relaxed);
    latency_.observe(wall_us() - m.as<std::int64_t>());
  }

  [[nodiscard]] std::int64_t received() const {
    return received_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const obs::Histogram& latency() const { return latency_; }

 private:
  void arm() {
    env_.set_timer(tick_, [this] {
      for (ProcessId q = 0; q < env_.n(); ++q) {
        if (q == env_.self()) continue;
        for (int i = 0; i < burst_; ++i) {
          env_.send(q, Message::make<std::int64_t>(protocol_id(), 1,
                                                   "bench.frame", wall_us()));
        }
      }
      arm();
    });
  }

  bool sender_;
  int burst_;
  DurUs tick_;
  std::atomic<std::int64_t> received_{0};
  obs::Histogram latency_;
};

/// Summed log2 buckets across receivers, for percentile extraction.
struct MergedHist {
  std::int64_t buckets[obs::Histogram::kBuckets]{};
  std::int64_t total{0};

  void add(const obs::Histogram& h) {
    for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
      const std::int64_t c = h.bucket_count(b);
      buckets[b] += c;
      total += c;
    }
  }

  /// Percentile estimate: the lower bound of the bucket where the
  /// cumulative count crosses q (power-of-two resolution by design).
  [[nodiscard]] std::int64_t percentile(double q) const {
    if (total == 0) return 0;
    const auto target = static_cast<std::int64_t>(q * static_cast<double>(total));
    std::int64_t cum = 0;
    for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
      cum += buckets[b];
      if (cum > target) return obs::Histogram::bucket_lower(b);
    }
    return obs::Histogram::bucket_lower(obs::Histogram::kBuckets - 1);
  }
};

std::int64_t sum_peer_counters(obs::MetricsRegistry& m, const char* prefix,
                               int n) {
  std::int64_t total = 0;
  for (int q = 0; q < n; ++q) {
    total += m.get(std::string(prefix) + ".p" + std::to_string(q));
  }
  return total;
}

struct FloodResult {
  bool available{false};
  std::int64_t frames{0};
  double frames_per_s{0};
  std::int64_t p50_us{0};
  std::int64_t p99_us{0};
  double dgrams_per_frame{0};
};

/// Runs an n-node flood (node 0..n-1 all send when n > 2; for the pair
/// case only node 0 sends) for \p dur and aggregates delivery stats.
FloodResult run_flood(const Combo& combo, int n, std::uint16_t base_port,
                      int burst, DurUs dur) {
  FloodResult r;
  std::vector<std::unique_ptr<DgramEnv>> envs;
  std::vector<Flood*> floods;
  const auto peers = loopback_peers(n, base_port);
  for (ProcessId p = 0; p < n; ++p) {
    auto env = make_exact(combo.backend, make_options(p, peers, combo.coalesce));
    if (env == nullptr) return r;  // unavailable
    const bool sender = n > 2 || p == 0;
    // tick 0 re-arms every event-loop iteration: the send rate adapts to
    // whatever the backend can actually move (saturation, not pacing).
    floods.push_back(&env->emplace<Flood>(sender, burst, 0));
    envs.push_back(std::move(env));
  }
  r.available = true;

  for (auto& e : envs) e->start();
  std::vector<std::thread> threads;
  threads.reserve(envs.size());
  for (auto& e : envs) {
    threads.emplace_back([&e, dur] { e->run_for(dur); });
  }
  for (auto& t : threads) t.join();

  std::int64_t dgrams = 0;
  std::int64_t sent_frames = 0;
  MergedHist merged;  // latency percentiles over every receiver
  for (std::size_t i = 0; i < envs.size(); ++i) {
    r.frames += floods[i]->received();
    merged.add(floods[i]->latency());
    dgrams += sum_peer_counters(envs[i]->metrics(), "net.dgram_sent", n);
    sent_frames += sum_peer_counters(envs[i]->metrics(), "net.sent", n);
  }
  r.frames_per_s =
      static_cast<double>(r.frames) / (static_cast<double>(dur) / 1e6);
  r.p50_us = merged.percentile(0.50);
  r.p99_us = merged.percentile(0.99);
  r.dgrams_per_frame = sent_frames > 0 ? static_cast<double>(dgrams) /
                                             static_cast<double>(sent_frames)
                                       : 0;
  return r;
}

struct AblationResult {
  bool available{false};
  double dgrams_per_peer_tick{0};
  double detect_ms{0};
};

/// E11: EfficientP at a fixed heartbeat period; steady-state wire cost and
/// crash-detection latency, with and without coalescing.
AblationResult run_ablation(const Combo& combo, std::uint16_t base_port,
                            DurUs period, DurUs steady, DurUs detect_deadline) {
  AblationResult r;
  const int n = 4;
  std::vector<std::unique_ptr<DgramEnv>> envs;
  std::vector<fd::EfficientP*> fds;
  const auto peers = loopback_peers(n, base_port);
  for (ProcessId p = 0; p < n; ++p) {
    auto env = make_exact(combo.backend, make_options(p, peers, combo.coalesce));
    if (env == nullptr) return r;
    fd::EfficientP::Config c;
    c.period = period;
    c.initial_timeout = 4 * period;
    c.timeout_increment = 2 * period;
    fds.push_back(&env->emplace<fd::EfficientP>(c));
    envs.push_back(std::move(env));
  }
  r.available = true;

  for (auto& e : envs) e->start();

  const ProcessId victim = n - 1;
  std::vector<std::thread> threads;
  std::atomic<bool> victim_alive{true};
  std::atomic<std::int64_t> crash_at{0};
  std::atomic<std::int64_t> detected_at{0};
  for (ProcessId p = 0; p < n; ++p) {
    DgramEnv* e = envs[static_cast<std::size_t>(p)].get();
    if (p == victim) {
      threads.emplace_back([e, &victim_alive] {
        while (victim_alive.load()) e->run_for(msec(20));
      });
    } else if (p == 0) {
      // Node 0 watches for the crash on its OWN loop thread, so reading
      // the (single-writer, unsynchronized) suspicion list is race-free.
      fd::EfficientP* watcher = fds[0];
      threads.emplace_back([e, watcher, victim, &crash_at, &detected_at,
                            steady, detect_deadline] {
        e->run_until(
            [watcher, victim, &crash_at, &detected_at] {
              if (crash_at.load() == 0) return false;
              if (!watcher->suspected().contains(victim)) return false;
              detected_at.store(wall_us());
              return true;
            },
            steady + detect_deadline);
      });
    } else {
      threads.emplace_back([e, steady, detect_deadline] {
        e->run_for(steady + detect_deadline);
      });
    }
  }

  std::this_thread::sleep_for(std::chrono::microseconds(steady));
  // Wire cost while everyone was alive, normalized per peer per tick
  // (metrics cells are atomics; cross-thread reads are safe).
  const double ticks =
      static_cast<double>(steady) / static_cast<double>(period);
  std::int64_t dgrams = 0;
  for (auto& e : envs) {
    dgrams += sum_peer_counters(e->metrics(), "net.dgram_sent", n);
  }
  r.dgrams_per_peer_tick = static_cast<double>(dgrams) /
                           (static_cast<double>(n) *
                            static_cast<double>(n - 1) * ticks);

  // Crash the victim; detection latency = until node 0 suspects it.
  victim_alive.store(false);
  crash_at.store(wall_us());
  for (auto& t : threads) t.join();
  r.detect_ms = detected_at.load() > 0
                    ? static_cast<double>(detected_at.load() -
                                          crash_at.load()) / 1000.0
                    : -1;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_net", "ecfd.bench_net.v1");
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  const bool have_uring = uring_available();
  std::cout << "bench_net: io_uring "
            << (have_uring ? "available" : "UNAVAILABLE (rows marked 0)")
            << "\n";

  const DurUs flood_dur = quick ? msec(300) : msec(2000);
  const DurUs steady = quick ? msec(400) : msec(2000);
  const int burst = 32;

  bench::section("pair_throughput");
  {
    bench::Table t({"backend", "coalesce", "available", "frames",
                    "frames_per_s", "p50_us", "p99_us"});
    t.print_header();
    std::uint16_t base = 23000;
    for (const Combo& c : kCombos) {
      FloodResult r;
      if (std::strcmp(c.backend, "poll") == 0 || have_uring) {
        r = run_flood(c, 2, base, burst, flood_dur);
      }
      t.print_row(c.backend, c.coalesce ? 1 : 0, r.available ? 1 : 0,
                  r.frames, r.frames_per_s, r.p50_us, r.p99_us);
      base += 8;
    }
  }

  bench::section("storm");
  {
    bench::Table t({"backend", "coalesce", "available", "nodes", "frames",
                    "frames_per_s", "dgrams_per_frame"});
    t.print_header();
    const int n = 4;
    std::uint16_t base = 23100;
    for (const Combo& c : kCombos) {
      FloodResult r;
      if (std::strcmp(c.backend, "poll") == 0 || have_uring) {
        r = run_flood(c, n, base, burst, flood_dur);
      }
      t.print_row(c.backend, c.coalesce ? 1 : 0, r.available ? 1 : 0, n,
                  r.frames, r.frames_per_s, r.dgrams_per_frame);
      base += 8;
    }
  }

  bench::section("coalescing_ablation");
  {
    bench::Table t({"backend", "coalesce", "available", "period_ms",
                    "dgrams_per_peer_tick", "detect_ms"});
    t.print_header();
    const DurUs period = msec(20);
    std::uint16_t base = 23200;
    for (const Combo& c : kCombos) {
      AblationResult r;
      if (std::strcmp(c.backend, "poll") == 0 || have_uring) {
        r = run_ablation(c, base, period, steady, sec(5));
      }
      t.print_row(c.backend, c.coalesce ? 1 : 0, r.available ? 1 : 0,
                  period / 1000, r.dgrams_per_peer_tick, r.detect_ms);
      base += 8;
    }
  }

  return bench::finish();
}
