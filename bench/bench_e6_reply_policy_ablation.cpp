// E6 — Section 5.4, last paragraphs: the waiting-rule ablation.
//
// The paper's coordinator waits for a majority of replies AND a reply from
// every process it does not suspect, then decides when a MAJORITY OF THE
// REPLIES ARE POSITIVE — negative replies alongside do not block. In
// contrast, Chandra-Toueg's coordinator takes the first majority and one
// nack blocks the round; Mostefaoui-Raynal's waits for n-f replies, and
// with only majority-correctness known (f = ceil(n/2)-1) a single nack in
// the quorum blocks as well.
//
// Adversarial setup: detector stable with leader p0, but a minority of
// processes permanently (and falsely) suspect the leader, so they nack
// every round. We sweep the number of nackers and report rounds to decide
// per policy.

#include "broadcast/reliable_broadcast.hpp"
#include "core/consensus_c.hpp"
#include "core/ecfd_compose.hpp"
#include "fd/scripted_fd.hpp"
#include "net/scenario.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;
using ecfd::core::ConsensusC;
using ecfd::core::ReplyPolicy;

struct Outcome {
  bool decided{false};
  int round{0};
  double time_ms{0};
};

Outcome run_once(ReplyPolicy policy, int n, int nackers, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.n = n;
  sc.seed = seed;
  sc.links = LinkKind::kPartialSync;
  sc.gst = 0;
  sc.delta = msec(5);
  auto sys = make_system(sc);

  std::vector<std::shared_ptr<void>> keepalive;
  std::vector<ConsensusC*> cons;
  for (ProcessId p = 0; p < n; ++p) {
    // Everyone trusts p0. Processes 1..nackers falsely suspect p0 forever.
    ProcessSet susp(n);
    if (p >= 1 && p <= nackers) susp.add(0);
    std::vector<fd::ScriptedFd::Step> steps;
    steps.push_back({0, susp, 0});
    auto& scripted = sys->host(p).emplace<fd::ScriptedFd>(steps);
    // NOTE: deliberately NOT the coupling-enforcing adapter — the false
    // suspicion of the trusted process is the point of the experiment.
    struct RawPair final : core::EcfdOracle {
      const fd::ScriptedFd* s;
      explicit RawPair(const fd::ScriptedFd* s_in) : s(s_in) {}
      ProcessSet suspected() const override { return s->suspected(); }
      ProcessId trusted() const override { return s->trusted(); }
    };
    auto oracle = std::make_shared<RawPair>(&scripted);
    keepalive.push_back(oracle);
    auto& rb = sys->host(p).emplace<broadcast::ReliableBroadcast>();
    ConsensusC::Config cc;
    cc.policy = policy;
    cc.max_rounds = 200;
    cons.push_back(
        &sys->host(p).emplace<ConsensusC>(oracle.get(), &rb, cc));
  }
  sys->start();
  for (ProcessId p = 0; p < n; ++p) cons[static_cast<std::size_t>(p)]->propose(100 + p);

  const TimeUs horizon = sec(30);
  while (sys->now() < horizon) {
    sys->run_for(msec(20));
    bool all = true;
    for (auto* c : cons) {
      if (!c->has_decided()) {
        all = false;
        break;
      }
    }
    if (all) break;
  }

  Outcome out;
  out.decided = true;
  for (auto* c : cons) {
    if (!c->has_decided()) out.decided = false;
  }
  if (out.decided) {
    for (auto* c : cons) {
      out.round = std::max(out.round, c->decision()->round);
      out.time_ms = std::max(
          out.time_ms, static_cast<double>(c->decision()->at) / 1000.0);
    }
  }
  return out;
}

struct Agg {
  int decided{0};
  double mean_round{0};
};

Agg run_many(ReplyPolicy policy, int n, int nackers) {
  Agg agg;
  constexpr int kSeeds = 6;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    Outcome o = run_once(policy, n, nackers, 700 + s);
    if (o.decided) {
      ++agg.decided;
      agg.mean_round += o.round;
    }
  }
  if (agg.decided > 0) agg.mean_round /= agg.decided;
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "e6_reply_policy_ablation");
  ecfd::bench::section("E6: reply-policy ablation (nacks vs decisions)");
  std::cout << "n=5, leader p0, k processes falsely suspect the leader and "
               "nack every round (6 seeds, cap 200 rounds).\n"
               "paper  = majority of replies + all unsuspected, decide on "
               "majority of POSITIVE replies\n"
               "firstq = first majority of replies, any nack blocks (CT)\n"
               "n-f    = first n-f replies (MR with f=ceil(n/2)-1)\n";

  const int n = 5;
  ecfd::bench::Table table({"nackers", "policy", "decided", "mean_round"});
  table.print_header();
  struct PolicyRow {
    ReplyPolicy policy;
    const char* name;
  };
  const PolicyRow policies[] = {
      {ReplyPolicy::kMajorityPlusUnsuspected, "paper"},
      {ReplyPolicy::kFirstMajority, "firstq"},
      {ReplyPolicy::kNMinusF, "n-f"},
  };
  for (int nackers : {0, 1, 2}) {
    for (const auto& pol : policies) {
      const Agg agg = run_many(pol.policy, n, nackers);
      table.print_row(nackers, pol.name,
                      std::to_string(agg.decided) + "/6", agg.mean_round);
    }
  }
  std::cout << "\nShape check: with nackers>0 the paper's policy still "
               "decides in round ~1; first-majority and n-f policies need "
               "many retry rounds (they decide only when the nacks happen "
               "to arrive late).\n";
  return ecfd::bench::finish();
}
