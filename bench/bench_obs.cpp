// Observability microbench: what recording actually costs. Three sections:
//
//   recorder_push   — EventRing::push on the hot path (the number that must
//                     stay in single-digit nanoseconds for the "recording
//                     is digest-invisible and nearly free" claim to hold),
//                     plus the disabled-ring no-op and a 4-thread
//                     contended push on one ring.
//   qos_ingest      — QosScoreboard::ingest per state transition, and a
//                     full suspect/unsuspect episode including the gauge
//                     export that ecfd_node performs per report tick.
//   flight_snapshot — FlightRecorder::snapshot (the periodic mmap re-dump)
//                     and crash_dump (the async-signal-safe path the signal
//                     handler runs) across ring depths.
//
// Wall-clock measurements on a live machine; the checked-in BENCH_OBS.json
// baseline is compared by SCHEMA in CI, never by value. Flags: the
// table.hpp-standard --json FILE.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/qos.hpp"
#include "obs/recorder.hpp"
#include "table.hpp"

namespace ecfd {
namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point t0, Clock::time_point t1,
                 std::uint64_t ops) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return ops == 0 ? 0.0 : static_cast<double>(ns) / static_cast<double>(ops);
}

void bench_recorder_push() {
  bench::section("recorder_push");
  bench::Table t({"case", "threads", "ops", "ns_op"});
  t.print_header();

  constexpr std::uint64_t kOps = 8'000'000;

  {
    obs::Recorder rec(4096);
    rec.bind_hosts(4);
    obs::EventRing& ring = rec.ring(0);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      ring.push(static_cast<TimeUs>(i), obs::EventType::kSend,
                static_cast<std::int32_t>(i & 3));
    }
    const auto t1 = Clock::now();
    t.print_row("hot_push", 1, kOps, ns_per_op(t0, t1, kOps));
  }

  {
    // The compiled-in-but-not-attached path every Env call pays when no
    // recorder is bound: push on a never-init ring.
    obs::EventRing ring;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      ring.push(static_cast<TimeUs>(i), obs::EventType::kSend, 0);
    }
    const auto t1 = Clock::now();
    t.print_row("disabled_push", 1, kOps, ns_per_op(t0, t1, kOps));
  }

  {
    // Worst case for the sharded runtime: several workers landing on the
    // same ring (normally each host has its own).
    obs::Recorder rec(4096);
    rec.bind_hosts(1);
    obs::EventRing& ring = rec.ring(0);
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = kOps / kThreads;
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&ring, &go] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          ring.push(static_cast<TimeUs>(i), obs::EventType::kDeliver, 1);
        }
      });
    }
    const auto t0 = Clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const auto t1 = Clock::now();
    t.print_row("contended_push", kThreads, kOps, ns_per_op(t0, t1, kOps));
  }
}

void bench_qos_ingest() {
  bench::section("qos_ingest");
  bench::Table t({"case", "n", "ops", "ns_op"});
  t.print_header();

  constexpr int kN = 64;
  constexpr std::uint64_t kEpisodes = 500'000;

  {
    // Alternating suspect/unsuspect over every peer: each ingest opens or
    // closes an episode, the estimator's steady state.
    obs::QosScoreboard sb(kN);
    obs::Event e;
    e.host = 0;
    const auto t0 = Clock::now();
    TimeUs now = 0;
    for (std::uint64_t i = 0; i < kEpisodes; ++i) {
      e.a = static_cast<std::int32_t>(1 + (i % (kN - 1)));
      e.time = now;
      e.type = obs::EventType::kSuspect;
      sb.ingest(e);
      now += 100;
      e.time = now;
      e.type = obs::EventType::kUnsuspect;
      sb.ingest(e);
      now += 100;
    }
    const auto t1 = Clock::now();
    t.print_row("ingest", kN, kEpisodes * 2, ns_per_op(t0, t1, kEpisodes * 2));
  }

  {
    // What ecfd_node's report tick pays: export every live pair's gauges
    // into the registry.
    obs::QosScoreboard sb(kN);
    obs::MetricsRegistry reg;
    sb.bind_metrics(&reg);
    obs::Event e;
    e.host = 0;
    for (int p = 1; p < kN; ++p) {
      e.a = p;
      e.time = 10;
      e.type = obs::EventType::kSuspect;
      sb.ingest(e);
      e.time = 500;
      e.type = obs::EventType::kUnsuspect;
      sb.ingest(e);
    }
    constexpr std::uint64_t kTicks = 20'000;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kTicks; ++i) {
      sb.export_gauges(0, static_cast<TimeUs>(1000 + i));
    }
    const auto t1 = Clock::now();
    t.print_row("export_gauges", kN, kTicks, ns_per_op(t0, t1, kTicks));
  }
}

void bench_flight_snapshot(const std::string& dir) {
  bench::section("flight_snapshot");
  bench::Table t({"case", "depth", "ops", "us_op"});
  t.print_header();

  for (const std::size_t depth : {1024u, 4096u, 16384u}) {
    obs::Recorder rec(depth);
    rec.bind_hosts(4);
    for (std::size_t i = 0; i < depth; ++i) {
      rec.ring(0).push(static_cast<TimeUs>(i), obs::EventType::kSend, 1);
      rec.state_ring(0).push(static_cast<TimeUs>(i),
                             obs::EventType::kSuspect, 1);
    }
    obs::MetricsRegistry reg;
    reg.add("net.sent.p0", 42);
    reg.set_gauge("fd.suspected", 1);

    const std::string path = dir + "/bench_obs_flight_" +
                             std::to_string(depth) + ".bin";
    obs::FlightRecorder fr;
    std::string error;
    if (!fr.open(path, &rec, /*self=*/0, &error)) {
      std::fprintf(stderr, "flight open failed: %s\n", error.c_str());
      return;
    }
    fr.set_metrics(&reg);

    constexpr std::uint64_t kSnaps = 2'000;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kSnaps; ++i) {
      fr.snapshot(static_cast<TimeUs>(depth + i));
    }
    const auto t1 = Clock::now();
    t.print_row("snapshot", depth, kSnaps,
                ns_per_op(t0, t1, kSnaps) / 1000.0);

    // The path the SIGSEGV handler runs (signal 0 keeps the image marked
    // orderly so the file stays reusable between iterations).
    const auto t2 = Clock::now();
    for (std::uint64_t i = 0; i < kSnaps; ++i) {
      fr.crash_dump(0);
    }
    const auto t3 = Clock::now();
    t.print_row("crash_dump", depth, kSnaps,
                ns_per_op(t2, t3, kSnaps) / 1000.0);

    fr.close();
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace ecfd

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "obs");
  std::string dir = "/tmp";
  if (const char* env = std::getenv("TMPDIR"); env != nullptr) dir = env;

  ecfd::bench_recorder_push();
  ecfd::bench_qos_ingest();
  ecfd::bench_flight_snapshot(dir);
  return ecfd::bench::finish();
}
