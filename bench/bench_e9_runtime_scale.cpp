// E9: threaded-runtime scale. Wall-clock throughput, send->deliver latency
// and heartbeat jitter of the sharded executor at n in {64, 256, 1024},
// against the legacy thread-per-process executor at n=64 (the largest size
// the old design handles comfortably; beyond that it needs one OS thread
// per host and a global routing lock).
//
// Unlike E1-E8 these numbers are wall-clock measurements on a live
// machine, not deterministic simulation: rerunning moves them. The
// checked-in BENCH_RUNTIME.json baseline is therefore compared by SCHEMA
// (sections/headers present) in CI, never by value; the headline ratios
// (sharded vs legacy msgs/sec) are what code review should watch.
//
// Flags: --quick (shorter windows, used by the CI perf-smoke job) and the
// table.hpp-standard --json FILE.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol_ids.hpp"
#include "runtime/thread_env.hpp"
#include "table.hpp"

namespace ecfd {
namespace {

using runtime::ThreadSystem;

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Thread-safe linear microsecond histogram: 1us buckets to 4ms, plus an
/// overflow count and an exact max. add() never allocates.
struct Hist {
  static constexpr int kBuckets = 4096;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  std::atomic<std::uint64_t> overflow{0};
  std::atomic<std::int64_t> max{0};

  void add(std::int64_t us) {
    if (us < 0) us = 0;
    if (us < kBuckets) {
      buckets[static_cast<std::size_t>(us)].fetch_add(
          1, std::memory_order_relaxed);
    } else {
      overflow.fetch_add(1, std::memory_order_relaxed);
    }
    std::int64_t cur = max.load(std::memory_order_relaxed);
    while (us > cur &&
           !max.compare_exchange_weak(cur, us, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = overflow.load();
    for (const auto& b : buckets) t += b.load();
    return t;
  }

  /// p in [0,1]; overflowed tails report the observed max.
  [[nodiscard]] double percentile(double p) const {
    const std::uint64_t t = total();
    if (t == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(p * static_cast<double>(t));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets[static_cast<std::size_t>(i)].load();
      if (seen > target) return static_cast<double>(i);
    }
    return static_cast<double>(max.load());
  }

  [[nodiscard]] double mean() const {
    const std::uint64_t t = total();
    if (t == 0) return 0.0;
    long double sum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      sum += static_cast<long double>(i) *
             static_cast<long double>(buckets[static_cast<std::size_t>(i)].load());
    }
    // Overflow entries are rare; account them at the observed max.
    sum += static_cast<long double>(overflow.load()) *
           static_cast<long double>(max.load());
    return static_cast<double>(sum / static_cast<long double>(t));
  }
};

struct Ping {
  TimeUs sent{0};
};

/// Token-ring storm shaped like failure-detector steady state: one host in
/// every kTokenStride launches a token; each delivery stamps send->deliver
/// latency, refreshes a watchdog timer (exactly what heartbeat receipt does
/// in HeartbeatP/StableLeader), and forwards the token. With zero injected
/// network delay this measures executor overhead end to end: mailbox
/// push/drain, dispatch, timer cancel+re-arm, payload pool, routing.
class Storm final : public Protocol {
 public:
  static constexpr int kTokenStride = 8;

  Storm(Env& env, std::atomic<std::int64_t>* hops, Hist* hist,
        std::atomic<bool>* recording)
      : Protocol(env, protocol_ids::kTesting),
        hops_(hops),
        hist_(hist),
        recording_(recording) {}

  void start() override {
    if (env_.self() % kTokenStride == 0) forward();
  }

  void on_message(const Message& m) override {
    hops_->fetch_add(1, std::memory_order_relaxed);
    if (recording_->load(std::memory_order_relaxed)) {
      hist_->add(env_.now() - m.as<Ping>().sent);
    }
    // Watchdog refresh, as on heartbeat receipt: cancel the old deadline,
    // arm a new one far enough out that it never actually fires.
    if (watchdog_ != kInvalidTimer) env_.cancel_timer(watchdog_);
    watchdog_ = env_.set_timer(sec(30), []() {});
    forward();
  }

 private:
  void forward() {
    const ProcessId next = (env_.self() + 1) % env_.n();
    env_.send(next, Message::make<Ping>(protocol_id(), 1, "e9.ping",
                                        Ping{env_.now()}));
  }

  std::atomic<std::int64_t>* hops_;
  Hist* hist_;
  std::atomic<bool>* recording_;
  TimerId watchdog_{kInvalidTimer};
};

/// Heartbeat-jitter probe: each host beats to its ring successor on a
/// fixed period over a fixed-delay link, so every deviation of the
/// receiver-observed inter-arrival time from the period is scheduler and
/// executor jitter, not network randomness.
class Beacon final : public Protocol {
 public:
  static constexpr DurUs kPeriod = msec(20);

  Beacon(Env& env, Hist* jitter, std::atomic<bool>* recording)
      : Protocol(env, protocol_ids::kTesting),
        jitter_(jitter),
        recording_(recording) {}

  void start() override {
    env_.set_timer(kPeriod, [this]() { tick(); });
  }

  void on_message(const Message&) override {
    const TimeUs now = env_.now();
    if (last_arrival_ >= 0 && recording_->load(std::memory_order_relaxed)) {
      const TimeUs gap = now - last_arrival_;
      jitter_->add(gap > kPeriod ? gap - kPeriod : kPeriod - gap);
    }
    last_arrival_ = now;
  }

 private:
  void tick() {
    env_.send((env_.self() + 1) % env_.n(),
              Message::make_empty(protocol_id(), 1, "e9.beat"));
    env_.set_timer(kPeriod, [this]() { tick(); });
  }

  Hist* jitter_;
  std::atomic<bool>* recording_;
  TimeUs last_arrival_{-1};
};

struct StormResult {
  double msgs_per_sec{0};
  double p50{0}, p95{0}, p99{0};
  int workers{0};
};

StormResult run_storm(bool legacy, int n, std::uint64_t seed, int warm_ms,
                      int window_ms) {
  ThreadSystem::Config cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.min_delay = 0;
  cfg.max_delay = 0;
  cfg.legacy_thread_per_process = legacy;
  // Declared before the system so they outlive the worker threads that the
  // ThreadSystem destructor joins.
  auto hops = std::make_unique<std::atomic<std::int64_t>>(0);
  auto hist = std::make_unique<Hist>();
  auto recording = std::make_unique<std::atomic<bool>>(false);
  ThreadSystem sys(cfg);
  for (ProcessId p = 0; p < n; ++p) {
    sys.host(p).emplace<Storm>(hops.get(), hist.get(), recording.get());
  }
  sys.start();
  sleep_ms(warm_ms);
  recording->store(true);
  const std::int64_t h0 = hops->load();
  const TimeUs t0 = sys.now();
  sleep_ms(window_ms);
  recording->store(false);
  const std::int64_t h1 = hops->load();
  const TimeUs t1 = sys.now();
  StormResult r;
  r.msgs_per_sec =
      static_cast<double>(h1 - h0) * 1e6 / static_cast<double>(t1 - t0);
  r.p50 = hist->percentile(0.50);
  r.p95 = hist->percentile(0.95);
  r.p99 = hist->percentile(0.99);
  r.workers = legacy ? n : sys.workers();
  return r;
}

struct JitterResult {
  double mean_us{0};
  double p95_us{0};
  std::int64_t max_us{0};
};

JitterResult run_beacon(bool legacy, int n, std::uint64_t seed, int warm_ms,
                        int window_ms) {
  ThreadSystem::Config cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.min_delay = usec(500);  // fixed link delay: deviations are pure
  cfg.max_delay = usec(500);  // executor/timer jitter
  cfg.legacy_thread_per_process = legacy;
  auto jitter = std::make_unique<Hist>();
  auto recording = std::make_unique<std::atomic<bool>>(false);
  ThreadSystem sys(cfg);
  for (ProcessId p = 0; p < n; ++p) {
    sys.host(p).emplace<Beacon>(jitter.get(), recording.get());
  }
  sys.start();
  sleep_ms(warm_ms);
  recording->store(true);
  sleep_ms(window_ms);
  recording->store(false);
  JitterResult r;
  r.mean_us = jitter->mean();
  r.p95_us = jitter->percentile(0.95);
  r.max_us = jitter->max.load();
  return r;
}

}  // namespace
}  // namespace ecfd

int main(int argc, char** argv) {
  using namespace ecfd;
  bench::init(argc, argv, "e9_runtime_scale");
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const int storm_warm = quick ? 200 : 300;
  const int storm_window = quick ? 700 : 2000;
  const int beacon_warm = quick ? 200 : 300;
  const int beacon_window = quick ? 1000 : 3000;

  std::cout << "E9: threaded runtime scale (wall-clock; "
            << (quick ? "quick" : "full") << " windows; "
            << std::thread::hardware_concurrency() << " hardware threads)\n";
  std::cout << "legacy = one OS thread per host + global route lock; "
               "sharded = M workers, mailboxes, timer wheels\n";

  struct Case {
    bool legacy;
    int n;
  };
  // Legacy beyond n=64 is deliberately not run: hundreds of OS threads on
  // one fabric lock is exactly the regime the sharded executor replaces.
  const Case cases[] = {{true, 64}, {false, 64}, {false, 256}, {false, 1024}};

  bench::section("E9 throughput and send->deliver latency (token ring)");
  bench::Table tput({"mode", "n", "workers", "msgs_per_sec", "p50_us",
                     "p95_us", "p99_us"});
  tput.print_header();
  double legacy64 = 0, sharded64 = 0;
  for (const Case& c : cases) {
    const StormResult r =
        run_storm(c.legacy, c.n, 0x9e3779b9, storm_warm, storm_window);
    tput.print_row(c.legacy ? "legacy" : "sharded", c.n, r.workers,
                   r.msgs_per_sec, r.p50, r.p95, r.p99);
    if (c.n == 64) (c.legacy ? legacy64 : sharded64) = r.msgs_per_sec;
  }

  bench::section("E9 heartbeat jitter (fixed 500us link, 20ms period)");
  bench::Table jit({"mode", "n", "mean_jitter_us", "p95_jitter_us",
                    "max_jitter_us"});
  jit.print_header();
  for (const Case& c : cases) {
    const JitterResult r =
        run_beacon(c.legacy, c.n, 0x2545f491, beacon_warm, beacon_window);
    jit.print_row(c.legacy ? "legacy" : "sharded", c.n, r.mean_us, r.p95_us,
                  r.max_us);
  }

  bench::section("E9 headline: sharded vs legacy at n=64");
  bench::Table head({"metric", "legacy", "sharded", "ratio"});
  head.print_header();
  head.print_row("msgs_per_sec", legacy64, sharded64,
                 legacy64 > 0 ? sharded64 / legacy64 : 0.0);

  return bench::finish();
}
