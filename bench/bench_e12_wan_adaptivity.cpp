// E12 — QoS-adaptive timeouts vs the static widening schedule under the
// WAN/geo scenario pack (DESIGN.md; Chen-Toueg-Aguilera estimation).
//
// The static heartbeat ◇P waits a provisioned constant after the last
// heartbeat and ratchets it +10 ms on every mistake, forever. The
// adaptive source predicts the next arrival from a sliding window and
// pays only a safety margin α on top — so after a transient disturbance
// (a gray window that heals, a link whose jitter spiked) the static
// schedule keeps its inflated timeout while the adaptive one re-converges
// to the observed arrival process. This bench measures that difference:
//
//   detect_ms  — crash → every correct process suspects the victim
//                (QosReport::Detection::all_suspect_delay, mean over seeds)
//   mistakes   — false-suspicion episodes among correct processes
//   accuracy%  — fraction of samples with no correct process suspected
//
// Profiles mirror the fuzzer's WAN pack:
//   lan   control: partial synchrony, 5 ms post-GST delta — both variants
//         must be indistinguishable (no regression on the easy case).
//   geo   geo3 preset scaled 3x (one-way paths up to ~320 ms): both
//         variants get the constant a static deployment must provision —
//         400 ms, enough that a starting or rejoining peer across the
//         slowest path is not false-suspected. The static schedule then
//         waits that constant on every crash forever; the predictor uses
//         it only until warm-up and then suspects at mean + α.
//   gray  the victim and one survivor turn gray (5x slow, +15 ms send
//         hold-back) for 4 s, heal, then the victim crashes: the static
//         timeout for both stays ratcheted after the heal; the predictor
//         re-converges in one window.
//   skew  the victim's clock runs 40% fast, so it heartbeats every ~7 ms:
//         the adaptive deadline hugs the real cadence while the static
//         one still waits the full provisioned constant.

#include "fd/heartbeat_p.hpp"
#include "fd/qos.hpp"
#include "net/geo.hpp"
#include "net/scenario.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;

constexpr int kN = 6;
constexpr ProcessId kVictim = 1;
constexpr TimeUs kDisturbAt = sec(2);
constexpr TimeUs kHealAt = sec(6);
constexpr TimeUs kCrashAt = sec(8);
constexpr TimeUs kHorizon = sec(12);

enum class Profile { kLan, kGeo, kGray, kSkew };

const char* profile_name(Profile p) {
  switch (p) {
    case Profile::kLan: return "lan";
    case Profile::kGeo: return "geo";
    case Profile::kGray: return "gray";
    case Profile::kSkew: return "skew";
  }
  return "?";
}

ScenarioConfig scenario(Profile prof, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = kN;
  cfg.seed = seed;
  if (prof == Profile::kGeo) {
    cfg.links = LinkKind::kGeo;
    cfg.geo = geo_preset("geo3")->scaled(3, 1);
  } else {
    cfg.links = LinkKind::kPartialSync;
    cfg.gst = 0;
    cfg.delta = msec(5);
  }
  return cfg;
}

struct Outcome {
  double detect_ms{0};   ///< crash -> all correct suspect the victim
  double mistakes{0};    ///< false-suspicion episodes (correct pairs only)
  double accuracy{0};    ///< query accuracy, percent
};

Outcome run(Profile prof, bool adaptive, std::uint64_t seed) {
  auto sys = make_system(scenario(prof, seed));

  switch (prof) {
    case Profile::kGray: {
      // Victim + one survivor turn gray, then heal before the crash; the
      // survivor keeps the mistake stream observable post-crash.
      for (ProcessId g : {kVictim, ProcessId{2}}) {
        ProcessHost* h = &sys->host(g);
        sys->scheduler().schedule_at(kDisturbAt,
                                     [h] { h->set_gray(5000, msec(15)); });
        sys->scheduler().schedule_at(kHealAt, [h] { h->set_gray(1000, 0); });
      }
      break;
    }
    case Profile::kSkew: {
      ProcessHost* h = &sys->host(kVictim);
      sys->scheduler().schedule_at(
          kDisturbAt, [h] { h->set_clock_skew(0, 400'000, 0); });
      break;
    }
    default:
      break;
  }

  std::vector<const SuspectOracle*> oracles(kN, nullptr);
  for (ProcessId p = 0; p < kN; ++p) {
    fd::HeartbeatP::Config hc;
    // On the WAN both variants get the same conservatively provisioned
    // constant (worst one-way path + jitter); the adaptive source only
    // falls back to it before warm-up.
    if (prof == Profile::kGeo) hc.initial_timeout = msec(400);
    if (adaptive) {
      hc.adaptive = true;
      hc.predictor.fallback_timeout = hc.initial_timeout;
    }
    oracles[static_cast<std::size_t>(p)] =
        &sys->host(p).emplace<fd::HeartbeatP>(hc);
  }

  FdProbe probe(*sys, msec(5));
  for (ProcessId p = 0; p < kN; ++p) {
    probe.attach(p, oracles[static_cast<std::size_t>(p)], nullptr);
  }
  probe.start(kHorizon);
  sys->crash_at(kVictim, kCrashAt);
  sys->start();
  sys->run_until(kHorizon);

  RunFacts facts;
  facts.n = kN;
  facts.correct = ProcessSet::full(kN);
  facts.correct.remove(kVictim);
  facts.end_time = kHorizon;
  const QosReport q =
      compute_qos(facts, {{kVictim, kCrashAt}}, probe.samples());

  Outcome o;
  const DurUs fallback = kHorizon - kCrashAt;
  o.detect_ms = static_cast<double>(
                    q.detections.empty()
                        ? fallback
                        : q.detections[0].all_suspect_delay.value_or(fallback)) /
                1000.0;
  o.mistakes = q.mistake_episodes;
  o.accuracy = 100.0 * q.query_accuracy;
  return o;
}

Outcome mean_over_seeds(Profile prof, bool adaptive) {
  constexpr int kSeeds = 5;
  Outcome acc;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const Outcome o = run(prof, adaptive, 21 + s);
    acc.detect_ms += o.detect_ms;
    acc.mistakes += o.mistakes;
    acc.accuracy += o.accuracy;
  }
  acc.detect_ms /= kSeeds;
  acc.mistakes /= kSeeds;
  acc.accuracy /= kSeeds;
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "e12_wan_adaptivity");
  ecfd::bench::section(
      "E12: adaptive vs static heartbeat timeouts under the WAN pack");
  std::cout << "n=" << kN << ", heartbeat period 10ms, provisioned timeout "
            << "30ms lan / 400ms geo (+10ms per mistake);\nadaptive = "
            << "Chen-style windowed predictor + margin, same constant as "
            << "fallback. Crash at 8s,\nhorizon 12s, 5 seeds.\n";

  ecfd::bench::Table table(
      {"profile", "variant", "detect_ms", "mistakes", "accuracy%"}, 12);
  table.print_header();
  for (Profile prof :
       {Profile::kLan, Profile::kGeo, Profile::kGray, Profile::kSkew}) {
    for (bool adaptive : {false, true}) {
      const Outcome o = mean_over_seeds(prof, adaptive);
      table.print_row(profile_name(prof), adaptive ? "adaptive" : "static",
                      o.detect_ms, o.mistakes, o.accuracy);
    }
  }

  std::cout << "\nShape check: on lan the two variants are "
               "indistinguishable (the provisioned constant happens to fit "
               "a quiet LAN). In every WAN profile the adaptive source must "
               "strictly win on detection time or mistakes: geo's "
               "provisioned-for-the-worst-path constant is paid by static "
               "on every detection while the predictor sheds it at "
               "warm-up, gray's heal "
               "leaves the static timeout inflated while the predictor "
               "re-converges, and skew's fast victim cadence is tracked by "
               "the predictor but not by the constant.\n";
  return ecfd::bench::finish();
}
