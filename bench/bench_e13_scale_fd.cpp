// E13: failure-detector scale. The flat constructions pay O(n^2) messages
// per period (heartbeat ◇P broadcasts all-to-all), which caps practical n
// in the low hundreds. The two scalable ◇C stacks added by this experiment
// — fd/hier_c (two-level hierarchy, ~2n msgs/period) and fd/swim (gossip
// membership, ~2-4 msgs per NODE per period) — push the same property set
// to n=16384. Three measurement sections:
//
//   1. Steady-state message cost on the DETERMINISTIC SIMULATOR: counts
//      are exact per simulated time, so the O(n^2) vs O(n) separation is
//      not polluted by executor saturation (this host has one hardware
//      thread; flat heartbeat at n=4096 already emits ~33M msgs/sim-sec,
//      far past what any single-core wall-clock run can route honestly).
//      Flat at n=16384 is omitted: ~268M messages PER PERIOD is the
//      infeasibility point the hierarchy exists to remove.
//   2. Detection latency on the THREADED RUNTIME (wall clock): crash one
//      non-leader mid-range process after warm-up, every survivor polls
//      its own oracle on its own executor; first/median/max time until the
//      crash is suspected. Wall-clock numbers on a live machine — rerunning
//      moves them; CI compares this bench by SCHEMA (and the headline
//      ratio), never by exact value. The flat stack needs a far slower
//      cadence to fit through a routing fabric at all — its rows use
//      deployment-realistic periods (250ms/1s), the scalable stacks 100ms.
//   3. Per-host memory of the constructed (never started) stacks on the
//      threaded runtime via the counting allocator (sim/alloc_counter):
//      flat keeps O(n) timer state per
//      host (O(n^2) total — ~4 GB at n=16384, constructible here but never
//      runnable), hier O(sqrt n), swim O(faulty).
//
// Flags: --quick (n <= 1024, shorter windows; the CI perf-smoke leg) and
// the table.hpp-standard --json FILE. Checked-in full output:
// BENCH_FD_SCALE.json (validated by tools/check_bench_schema.py
// --bench-fd-scale, including the >=10x headline ratio at n=4096).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fd/efficient_p.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/hier_c.hpp"
#include "fd/swim.hpp"
#include "net/scenario.hpp"
#include "runtime/thread_env.hpp"
#include "sim/alloc_counter.hpp"
#include "table.hpp"

namespace ecfd {
namespace {

using runtime::ThreadSystem;

enum class Stack { kFlat, kEffP, kHier, kSwim };

const char* stack_name(Stack s) {
  switch (s) {
    case Stack::kFlat: return "heartbeat_p";
    case Stack::kEffP: return "efficient_p";
    case Stack::kHier: return "hier_c";
    case Stack::kSwim: return "swim";
  }
  return "?";
}

const char* stack_prefix(Stack s) {
  switch (s) {
    case Stack::kFlat: return "msg.hb_p.";
    case Stack::kEffP: return "msg.effp.";
    case Stack::kHier: return "msg.hier.";
    case Stack::kSwim: return "msg.swim.";
  }
  return "?";
}

/// Probe cadence per n for the simulator section: larger universes beat
/// slower, as a real deployment would (and as the WAN scenarios assume).
DurUs period_for(int n) {
  if (n <= 256) return msec(100);
  if (n <= 1024) return msec(200);
  return msec(500);
}

fd::HeartbeatP::Config flat_cfg(DurUs period) {
  fd::HeartbeatP::Config c;
  c.period = period;
  c.initial_timeout = 3 * period;
  c.timeout_increment = period;
  return c;
}

fd::EfficientP::Config effp_cfg(DurUs period) {
  fd::EfficientP::Config c;
  c.period = period;
  c.initial_timeout = 3 * period;
  c.timeout_increment = period;
  return c;
}

fd::HierC::Config hier_cfg(DurUs period) {
  fd::HierC::Config c;
  c.period = period;
  c.initial_timeout = 3 * period;
  c.timeout_increment = period;
  return c;
}

fd::SwimFd::Config swim_cfg(DurUs period) {
  fd::SwimFd::Config c;
  c.period = period;
  c.ack_timeout = std::max<DurUs>(msec(10), period / 4);
  c.timeout_increment = c.ack_timeout;
  c.suspect_timeout = 4 * period;
  return c;
}

/// Installs one stack instance on a host (sim ProcessHost or ThreadHost —
/// both expose emplace<P>) and returns it as the suspicion oracle.
template <class Host>
const SuspectOracle* install(Stack s, Host& host, DurUs period) {
  switch (s) {
    case Stack::kFlat:
      return &host.template emplace<fd::HeartbeatP>(flat_cfg(period));
    case Stack::kEffP:
      return &host.template emplace<fd::EfficientP>(effp_cfg(period));
    case Stack::kHier:
      return &host.template emplace<fd::HierC>(hier_cfg(period));
    case Stack::kSwim:
      return &host.template emplace<fd::SwimFd>(swim_cfg(period));
  }
  return nullptr;
}

// --- section 1: message cost on the deterministic simulator -------------

std::int64_t sent_with_prefix(const sim::Counters& counters,
                              const char* prefix) {
  const std::string pre(prefix);
  std::int64_t total = 0;
  for (const auto& [key, value] : counters.all()) {
    if (key.rfind(pre, 0) == 0 && key.size() > 5 &&
        key.compare(key.size() - 5, 5, ".sent") == 0) {
      total += value;
    }
  }
  return total;
}

struct MsgCost {
  double per_node_per_period{0};
  double per_node_per_sec{0};
  std::int64_t total{0};
};

MsgCost run_msg_cost(Stack s, int n, int warm_periods, int window_periods) {
  ScenarioConfig sc;
  sc.n = n;
  sc.seed = 42;
  sc.links = LinkKind::kReliable;
  auto sys = make_system(sc);
  const DurUs period = period_for(n);
  for (ProcessId p = 0; p < n; ++p) install(s, sys->host(p), period);
  sys->start();
  sys->run_for(warm_periods * period);
  const std::int64_t before = sent_with_prefix(sys->counters(), stack_prefix(s));
  sys->run_for(window_periods * period);
  const std::int64_t after = sent_with_prefix(sys->counters(), stack_prefix(s));
  MsgCost r;
  r.total = after - before;
  r.per_node_per_period = static_cast<double>(r.total) / n / window_periods;
  r.per_node_per_sec = static_cast<double>(r.total) * 1e6 /
                       (static_cast<double>(window_periods * period) * n);
  return r;
}

// --- section 2: detection latency on the threaded runtime ---------------

struct DetectResult {
  double first_ms{0};
  double p50_ms{0};
  double max_ms{0};
  int detected{0};
  int observers{0};
  double msgs_per_node_per_sec{0};
};

DetectResult run_detect(Stack s, int n, DurUs period) {
  ThreadSystem::Config cfg;
  cfg.n = n;
  cfg.seed = 7;
  cfg.min_delay = usec(100);
  cfg.max_delay = msec(2);
  if (s == Stack::kHier) {
    // Cell-aware placement: HierC's default cells are contiguous blocks of
    // ceil(sqrt(n)) ids, so pin each cell to one worker.
    cfg.shard_block =
        static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  }
  DetectResult r;
  r.observers = n - 1;

  ThreadSystem sys(cfg);
  std::vector<const SuspectOracle*> oracles(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    oracles[static_cast<std::size_t>(p)] = install(s, sys.host(p), period);
  }

  // Victim: mid-range, never an initial hier cell leader (id % cell != 0).
  const ProcessId victim = n / 2 + 1;

  // Each survivor polls its own oracle on its own executor (so reading the
  // protocol is race-free) and publishes its first-detection wall time.
  auto detect_at = std::make_unique<std::vector<std::atomic<TimeUs>>>(
      static_cast<std::size_t>(n));
  for (auto& a : *detect_at) a.store(-1, std::memory_order_relaxed);
  const DurUs poll = std::max<DurUs>(msec(10), period / 8);
  for (ProcessId p = 0; p < n; ++p) {
    if (p == victim) continue;
    runtime::ThreadHost& host = sys.host(p);
    auto looper = std::make_shared<std::function<void()>>();
    *looper = [&sys, &host, looper,
               oracle = oracles[static_cast<std::size_t>(p)],
               slot = &(*detect_at)[static_cast<std::size_t>(p)], victim,
               poll]() {
      if (oracle->suspected().contains(victim)) {
        slot->store(sys.now(), std::memory_order_relaxed);
        return;  // detected: stop polling
      }
      host.post_at(sys.now() + poll, [looper]() { (*looper)(); });
    };
    host.post_at(0, [looper]() { (*looper)(); });
  }

  sys.start();
  // Warm well past the initial timeout so the crash hits steady state.
  std::this_thread::sleep_for(std::chrono::microseconds(6 * period));
  const std::uint64_t routed0 = sys.messages_routed();
  sys.host(victim).crash();
  const TimeUs crash_t = sys.now();

  const TimeUs deadline = crash_t + 40 * period;
  while (sys.now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int done = 0;
    for (ProcessId p = 0; p < n; ++p) {
      if (p == victim) continue;
      if ((*detect_at)[static_cast<std::size_t>(p)].load(
              std::memory_order_relaxed) >= 0) {
        ++done;
      }
    }
    if (done == n - 1) break;
  }
  const std::uint64_t routed1 = sys.messages_routed();
  const TimeUs t1 = sys.now();

  std::vector<double> lat;
  for (ProcessId p = 0; p < n; ++p) {
    if (p == victim) continue;
    const TimeUs at = (*detect_at)[static_cast<std::size_t>(p)].load(
        std::memory_order_relaxed);
    if (at >= 0) lat.push_back(static_cast<double>(at - crash_t) / 1000.0);
  }
  std::sort(lat.begin(), lat.end());
  r.detected = static_cast<int>(lat.size());
  if (!lat.empty()) {
    r.first_ms = lat.front();
    r.p50_ms = lat[lat.size() / 2];
    r.max_ms = lat.back();
  }
  r.msgs_per_node_per_sec = static_cast<double>(routed1 - routed0) * 1e6 /
                            (static_cast<double>(t1 - crash_t) * n);
  return r;
}

// --- section 3: memory of constructed stacks ----------------------------

/// Bytes requested through operator new while constructing the system and
/// its stacks. The counting allocator (sim/alloc_counter.cpp, linked into
/// this binary only) is the right probe here: VmRSS deltas read ~0 once
/// the heap has freed arenas from earlier sections to reuse.
double construct_heap_mb(Stack s, int n) {
  const std::uint64_t before = sim::alloc_bytes();
  ThreadSystem::Config cfg;
  cfg.n = n;
  cfg.seed = 3;
  cfg.workers = 1;
  ThreadSystem sys(cfg);
  for (ProcessId p = 0; p < n; ++p) install(s, sys.host(p), period_for(n));
  const std::uint64_t after = sim::alloc_bytes();
  return static_cast<double>(after - before) / (1024.0 * 1024.0);
}

}  // namespace
}  // namespace ecfd

int main(int argc, char** argv) {
  using namespace ecfd;
  bench::init(argc, argv, "e13_scale_fd");
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  std::cout << "E13: failure-detector scale (" << (quick ? "quick" : "full")
            << " mode; " << std::thread::hardware_concurrency()
            << " hardware thread(s))\n"
            << "flat heartbeat_p = O(n^2) msgs/period; hier_c and swim = "
               "O(n) total.\n"
            << "Section 1 counts exact messages on the deterministic "
               "simulator; sections 2 and 3 run the threaded runtime.\n";

  const int nmax = quick ? 1024 : 16384;
  const int nmax_flat = quick ? 1024 : 4096;
  const std::vector<int> sizes = {256, 1024, 4096, 16384};

  bench::section("E13 steady-state message cost (deterministic sim)");
  bench::Table cost({"stack", "n", "period_ms", "msgs_per_node_per_period",
                     "msgs_per_node_per_sec", "total_msgs"});
  cost.print_header();
  double flat4096 = 0, hier4096 = 0, swim4096 = 0;
  for (Stack s : {Stack::kFlat, Stack::kEffP, Stack::kHier, Stack::kSwim}) {
    for (int n : sizes) {
      const bool flatish = s == Stack::kFlat || s == Stack::kEffP;
      if (n > (flatish ? nmax_flat : nmax)) continue;
      // Flat at n=4096 moves ~17M messages per period; one window period
      // keeps the run short without changing the count's meaning (the sim
      // is deterministic — the count is exact, not sampled).
      const int warm = (s == Stack::kFlat && n >= 4096) ? 1 : 2;
      const int window = (s == Stack::kFlat && n >= 4096) ? 1 : (quick ? 2 : 4);
      const MsgCost r = run_msg_cost(s, n, warm, window);
      cost.print_row(stack_name(s), n, period_for(n) / 1000,
                     r.per_node_per_period, r.per_node_per_sec, r.total);
      if (n == 4096) {
        if (s == Stack::kFlat) flat4096 = r.per_node_per_period;
        if (s == Stack::kHier) hier4096 = r.per_node_per_period;
        if (s == Stack::kSwim) swim4096 = r.per_node_per_period;
      }
    }
  }

  bench::section("E13 detection latency (threaded runtime)");
  bench::Table det({"stack", "n", "period_ms", "detect_first_ms",
                    "detect_p50_ms", "detect_max_ms", "detected", "observers",
                    "msgs_per_node_per_sec"});
  det.print_header();
  const std::vector<int> det_sizes =
      quick ? std::vector<int>{256} : std::vector<int>{256, 1024};
  for (Stack s : {Stack::kFlat, Stack::kHier, Stack::kSwim}) {
    for (int n : det_sizes) {
      // Flat's all-to-all load forces a slow deployment-realistic cadence;
      // the O(n)-total stacks afford 100ms probing at either size.
      const DurUs period =
          s == Stack::kFlat ? (n <= 256 ? msec(250) : msec(1000)) : msec(100);
      const DetectResult r = run_detect(s, n, period);
      det.print_row(stack_name(s), n, period / 1000, r.first_ms, r.p50_ms,
                    r.max_ms, r.detected, r.observers, r.msgs_per_node_per_sec);
    }
  }

  bench::section("E13 per-host memory (threaded runtime, constructed stacks)");
  bench::Table mem({"stack", "n", "heap_mb", "kb_per_host"});
  mem.print_header();
  for (Stack s : {Stack::kFlat, Stack::kHier, Stack::kSwim}) {
    for (int n : sizes) {
      // Flat at n=16384 IS constructible (unlike its message load): ~4 GB
      // of per-peer timer state, the O(n^2)-total-memory endpoint.
      if (n > (quick ? 1024 : 16384)) continue;
      const double mb = construct_heap_mb(s, n);
      mem.print_row(stack_name(s), n, mb, mb * 1024.0 / n);
    }
  }

  if (!quick) {
    bench::section("E13 headline: per-node message cost at n=4096");
    bench::Table head({"stack", "msgs_per_node_per_period", "flat_ratio"});
    head.print_header();
    head.print_row("heartbeat_p", flat4096, 1.0);
    head.print_row("hier_c", hier4096,
                   hier4096 > 0 ? flat4096 / hier4096 : 0.0);
    head.print_row("swim", swim4096,
                   swim4096 > 0 ? flat4096 / swim4096 : 0.0);
  }

  return bench::finish();
}
