// E2 — Section 5.4 + Theorem 3: rounds needed after the failure detector
// stabilizes.
//
// Paper's claim: with the leader-election capability of ◇C the algorithm
// decides in ONE round once the detector is stable, whatever process the
// detector elected; any rotating-coordinator ◇S algorithm has runs needing
// up to n extra rounds, because it must grind through rounds whose
// coordinators are still suspected until rotation reaches the
// never-suspected process.
//
// We use the Theorem 3 adversarial ◇S/◇C detector: stable from t=0,
// suspecting everyone except the leader p_k, and sweep k.

#include "consensus/harness.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;
using namespace ecfd::consensus;

HarnessResult run(Algo algo, int n, ProcessId leader, std::uint64_t seed) {
  HarnessConfig cfg;
  cfg.scenario.n = n;
  cfg.scenario.seed = seed;
  cfg.scenario.links = LinkKind::kPartialSync;
  cfg.scenario.gst = 0;
  cfg.scenario.delta = msec(5);
  cfg.algo = algo;
  cfg.fd = FdStack::kScriptedStable;
  cfg.fd_stable_at = 0;
  cfg.scripted_ewa_only = true;
  cfg.scripted_leader = leader;
  cfg.horizon = sec(60);
  return run_consensus(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "e2_rounds_after_stabilization");
  ecfd::bench::section("E2: decision round vs leader position (Theorem 3)");
  std::cout << "Adversarial stable ◇S: everyone suspects everyone except "
               "the leader p_k.\nPaper: ecfd-C decides in round 1 for every "
               "k; rotating CT needs ~k+1 rounds (Omega(n) worst case).\n";

  const int n = 9;
  ecfd::bench::Table table({"leader_k", "C_round", "C_time_ms", "CT_round",
                            "CT_time_ms"});
  table.print_header();
  int ct_worst = 0;
  for (ProcessId k = 0; k < n; ++k) {
    const HarnessResult c = run(Algo::kEcfdC, n, k, 2000 + k);
    const HarnessResult ct = run(Algo::kChandraTouegS, n, k, 3000 + k);
    ct_worst = std::max(ct_worst, ct.min_decision_round);
    table.print_row(static_cast<int>(k), c.min_decision_round,
                    static_cast<double>(c.last_decision_at) / 1000.0,
                    ct.min_decision_round,
                    static_cast<double>(ct.last_decision_at) / 1000.0);
  }
  std::cout << "\nCT worst case over leader positions: " << ct_worst
            << " rounds (paper: Omega(n), here n=" << n << ").\n";
  return ecfd::bench::finish();
}
