// E4 — Section 4's latency remark: the Fig. 2 transformation propagates
// the leader's suspected list with ONE broadcast hop, avoiding the high
// crash-detection latency of the ring ◇P, where suspicion information
// travels hop-by-hop around the ring.
//
// Measurement: crash one process in a stable system and record how long
// until EVERY correct process's suspected set contains it. Averaged over
// seeds, swept over n. The ring's latency grows with n; the ◇C→◇P
// transformation's and the all-to-all heartbeat's stay flat.

#include "core/c_to_p.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/ring_fd.hpp"
#include "fd/scripted_fd.hpp"
#include "net/scenario.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;

ScenarioConfig scenario(int n, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = 0;
  cfg.delta = msec(5);
  return cfg;
}

/// Runs one crash-detection experiment and returns the delay (us) from the
/// crash until every correct process suspects the victim (or -1 on
/// timeout).
template <class InstallFn>
DurUs detection_delay(int n, std::uint64_t seed, InstallFn install) {
  auto sys = make_system(scenario(n, seed));
  std::vector<const SuspectOracle*> oracles(static_cast<std::size_t>(n));
  install(*sys, oracles);
  sys->start();

  const TimeUs crash_at = sec(1);
  const ProcessId victim = n / 2;
  sys->crash_at(victim, crash_at);

  // Poll frequently until all correct processes suspect the victim.
  sys->run_until(crash_at);
  const TimeUs deadline = crash_at + sec(30);
  while (sys->now() < deadline) {
    sys->run_for(msec(1));
    bool all = true;
    for (ProcessId p = 0; p < n; ++p) {
      if (p == victim) continue;
      if (!oracles[static_cast<std::size_t>(p)]->suspected().contains(victim)) {
        all = false;
        break;
      }
    }
    if (all) return sys->now() - crash_at;
  }
  return -1;
}

template <class InstallFn>
double mean_delay_ms(int n, InstallFn install) {
  double total = 0;
  constexpr int kSeeds = 5;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const DurUs d = detection_delay(n, 100 + s, install);
    total += d < 0 ? 30000.0 : static_cast<double>(d) / 1000.0;
  }
  return total / kSeeds;
}

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "e4_detection_latency");
  ecfd::bench::section("E4: crash-detection latency to ALL correct processes");
  std::cout << "Paper (Sec. 4): the ring ◇P suffers high latency (list "
               "travels around the ring); the Fig.2 transformation does "
               "not.\n";

  ecfd::bench::Table table({"n", "ctp_ms", "hb_ms", "ring_ms"});
  table.print_header();
  for (int n : {4, 8, 16, 24}) {
    const double ctp = mean_delay_ms(
        n, [n](System& sys, std::vector<const SuspectOracle*>& out) {
          for (ProcessId p = 0; p < n; ++p) {
            std::vector<fd::ScriptedFd::Step> steps;
            steps.push_back({0, ProcessSet(n), 0});  // p0 stable leader
            auto& omega = sys.host(p).emplace<fd::ScriptedFd>(steps);
            out[static_cast<std::size_t>(p)] =
                &sys.host(p).emplace<core::CToP>(&omega);
          }
        });
    const double hb = mean_delay_ms(
        n, [n](System& sys, std::vector<const SuspectOracle*>& out) {
          for (ProcessId p = 0; p < n; ++p) {
            out[static_cast<std::size_t>(p)] =
                &sys.host(p).emplace<fd::HeartbeatP>();
          }
        });
    const double ring = mean_delay_ms(
        n, [n](System& sys, std::vector<const SuspectOracle*>& out) {
          for (ProcessId p = 0; p < n; ++p) {
            out[static_cast<std::size_t>(p)] =
                &sys.host(p).emplace<fd::RingFd>();
          }
        });
    table.print_row(n, ctp, hb, ring);
  }
  std::cout << "\nShape check: ring latency grows with n (hop-by-hop "
               "gossip); ctp and hb stay roughly flat.\n";
  return ecfd::bench::finish();
}
