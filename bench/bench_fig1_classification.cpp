// Fig. 1 — the paper's class table, regenerated empirically.
//
// Fig. 1 defines the four eventual failure-detector classes by their
// completeness/accuracy combination:
//
//                  | eventual strong acc. | eventual weak acc.
//   strong compl.  |        ◇P            |        ◇S
//   weak compl.    |        ◇Q            |        ◇W
//
// plus Omega (Property 1) and the paper's ◇C (Definition 1). We run every
// detector implementation in this library through the same crash scenario
// and print which properties its sampled output actually satisfied —
// reproducing the table with measured data instead of definitions.

#include <memory>

#include "core/c_to_p.hpp"
#include "core/ecfd_compose.hpp"
#include "fd/efficient_p.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/leader_candidate.hpp"
#include "fd/omega_from_s.hpp"
#include "fd/probe.hpp"
#include "fd/properties.hpp"
#include "fd/ring_fd.hpp"
#include "fd/scripted_fd.hpp"
#include "fd/stable_leader.hpp"
#include "fd/w_to_s.hpp"
#include "net/scenario.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;

struct OraclePair {
  const SuspectOracle* suspect{nullptr};
  const LeaderOracle* leader{nullptr};
};

using Installer = std::function<OraclePair(
    ProcessHost&, ProcessId, std::vector<std::shared_ptr<void>>&)>;

FdReport classify(const Installer& install, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 6;
  cfg.seed = seed;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = msec(250);
  cfg.delta = msec(5);
  cfg.pre_gst_max = msec(50);
  cfg.with_crash(2, msec(700));
  cfg.with_crash(5, sec(1));

  auto sys = make_system(cfg);
  std::vector<std::shared_ptr<void>> keepalive;
  FdProbe probe(*sys, msec(5));
  for (ProcessId p = 0; p < cfg.n; ++p) {
    OraclePair o = install(sys->host(p), p, keepalive);
    probe.attach(p, o.suspect, o.leader);
  }
  const TimeUs horizon = sec(10);
  probe.start(horizon);
  sys->start();
  sys->run_until(horizon);

  RunFacts facts;
  facts.n = cfg.n;
  facts.correct = ProcessSet::full(cfg.n);
  facts.correct.remove(2);
  facts.correct.remove(5);
  facts.end_time = horizon;
  return check_fd_properties(facts, probe.samples());
}

const char* yn(bool b) { return b ? "yes" : "-"; }

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "fig1_classification");
  ecfd::bench::section("Fig. 1: measured class membership of every detector");
  std::cout << "scenario: n=6, crashes of p2@700ms and p5@1s, GST=250ms; "
               "10s sampled run.\nSC/WC = strong/weak completeness, "
               "ESA/EWA = eventual strong/weak accuracy.\n";

  ecfd::bench::Table table({"detector", "SC", "WC", "ESA", "EWA", "Omega",
                            "dC", "class"},
                           9);
  table.print_header();

  auto row = [&table](const char* name, const FdReport& r) {
    const char* cls = "-";
    if (r.is_eventually_consistent() && r.is_eventually_perfect()) {
      cls = "dP+dC";
    } else if (r.is_eventually_perfect()) {
      cls = "dP";
    } else if (r.is_eventually_consistent()) {
      cls = "dC";
    } else if (r.is_eventually_strong()) {
      cls = "dS";
    } else if (r.is_eventually_quasi_perfect()) {
      cls = "dQ";
    } else if (r.is_eventually_weak()) {
      cls = "dW";
    } else if (r.is_omega()) {
      cls = "Omega";
    }
    table.print_row(name, yn(r.strong_completeness.holds),
                    yn(r.weak_completeness.holds),
                    yn(r.eventual_strong_accuracy.holds),
                    yn(r.eventual_weak_accuracy.holds), yn(r.omega.holds),
                    yn(r.is_eventually_consistent()), cls);
  };

  row("heartbeatP", classify(
                        [](ProcessHost& h, ProcessId,
                           std::vector<std::shared_ptr<void>>&) {
                          auto& fd = h.emplace<fd::HeartbeatP>();
                          return OraclePair{&fd, nullptr};
                        },
                        1));

  row("ring", classify(
                  [](ProcessHost& h, ProcessId,
                     std::vector<std::shared_ptr<void>>&) {
                    auto& fd = h.emplace<fd::RingFd>();
                    return OraclePair{&fd, &fd};
                  },
                  2));

  row("efficientP", classify(
                        [](ProcessHost& h, ProcessId,
                           std::vector<std::shared_ptr<void>>&) {
                          auto& fd = h.emplace<fd::EfficientP>();
                          return OraclePair{&fd, &fd};
                        },
                        3));

  row("leader-cand", classify(
                         [](ProcessHost& h, ProcessId,
                            std::vector<std::shared_ptr<void>>&) {
                           auto& fd = h.emplace<fd::LeaderCandidate>();
                           return OraclePair{nullptr, &fd};
                         },
                         4));

  row("stable-ldr", classify(
                        [](ProcessHost& h, ProcessId,
                           std::vector<std::shared_ptr<void>>&) {
                          auto& fd = h.emplace<fd::StableLeader>();
                          return OraclePair{nullptr, &fd};
                        },
                        5));

  // Weakly complete input lifted to ◇S by the CT transformation: only p0's
  // module ever suspects the crashed processes directly.
  row("WtoS(weak)", classify(
                        [](ProcessHost& h, ProcessId p,
                           std::vector<std::shared_ptr<void>>&) {
                          const int n = h.n();
                          ProcessSet crashed(n);
                          crashed.add(2);
                          crashed.add(5);
                          std::vector<fd::ScriptedFd::Step> steps;
                          steps.push_back({0, ProcessSet(n), 0});
                          if (p == 0) steps.push_back({sec(2), crashed, 0});
                          auto& in = h.emplace<fd::ScriptedFd>(steps);
                          auto& out = h.emplace<fd::WToS>(&in);
                          return OraclePair{&out, nullptr};
                        },
                        6));

  row("hb+OmegaFromS", classify(
                           [](ProcessHost& h, ProcessId,
                              std::vector<std::shared_ptr<void>>& keep) {
                             auto& hb = h.emplace<fd::HeartbeatP>();
                             auto& om = h.emplace<fd::OmegaFromS>(&hb);
                             auto c = std::make_shared<
                                 core::EcfdFromSAndOmega>(&hb, &om);
                             keep.push_back(c);
                             return OraclePair{c.get(), c.get()};
                           },
                           7));

  row("Omega->dC", classify(
                       [](ProcessHost& h, ProcessId p,
                          std::vector<std::shared_ptr<void>>& keep) {
                         auto& lc = h.emplace<fd::LeaderCandidate>();
                         auto c = std::make_shared<core::EcfdFromOmega>(
                             h.n(), p, &lc);
                         keep.push_back(c);
                         return OraclePair{c.get(), c.get()};
                       },
                       8));

  row("CToP(Fig.2)", classify(
                         [](ProcessHost& h, ProcessId,
                            std::vector<std::shared_ptr<void>>&) {
                           auto& omega = h.emplace<fd::LeaderCandidate>();
                           auto& ctp = h.emplace<core::CToP>(&omega);
                           return OraclePair{&ctp, &omega};
                         },
                         9));

  std::cout << "\nExpected per the paper: heartbeat/ring/efficientP/CToP "
               "reach dP (hence dS/dC with a leader); the Omega-only "
               "detectors satisfy Property 1 only; Omega->dC is dC but NOT "
               "dP (worst accuracy); WtoS lifts weak to strong "
               "completeness.\n";
  return ecfd::bench::finish();
}
