// E8 — Section 2.2's observation, quantified:
//
//   "usually it is not necessary for the failure detector to reach
//    permanent stability to be useful. Instead, many algorithms can
//    successfully complete if the failure detector provides a unique
//    leader for long enough periods of time."
//
// The scripted ◇C detector here alternates between a stable window of
// width W (common leader p0, accurate suspicions) and an equally long
// chaos window (every process trusts itself and suspects everyone else).
// We sweep W and report how often, and how fast, the ◇C-consensus decides
// — the crossover locates "long enough" for this network (delta = 5ms,
// a decision needs ~4 message delays plus the poll cadence).

#include "broadcast/reliable_broadcast.hpp"
#include "core/consensus_c.hpp"
#include "core/ecfd_compose.hpp"
#include "fd/scripted_fd.hpp"
#include "net/scenario.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;

/// Builds the alternating script for one process: stable on
/// [2kW, (2k+1)W), chaos on [(2k+1)W, (2k+2)W).
std::vector<fd::ScriptedFd::Step> alternating_script(int n, ProcessId self,
                                                     DurUs window,
                                                     TimeUs horizon) {
  std::vector<fd::ScriptedFd::Step> steps;
  ProcessSet none(n);
  ProcessSet all_but_self = ProcessSet::full(n);
  all_but_self.remove(self);
  for (TimeUs t = 0; t < horizon; t += 2 * window) {
    steps.push_back({t, none, 0});                       // stable
    steps.push_back({t + window, all_but_self, self});   // chaos
  }
  return steps;
}

struct Outcome {
  int decided{0};
  double mean_ms{0};
};

Outcome run_window(int n, DurUs window, int seeds) {
  Outcome out;
  for (std::uint64_t s = 0; s < static_cast<std::uint64_t>(seeds); ++s) {
    ScenarioConfig sc;
    sc.n = n;
    sc.seed = 900 + s;
    sc.links = LinkKind::kPartialSync;
    sc.gst = 0;
    sc.delta = msec(5);
    auto sys = make_system(sc);
    const TimeUs horizon = sec(5);

    std::vector<std::shared_ptr<void>> keepalive;
    std::vector<core::ConsensusC*> cons;
    for (ProcessId p = 0; p < n; ++p) {
      auto& scripted = sys->host(p).emplace<fd::ScriptedFd>(
          alternating_script(n, p, window, horizon));
      auto oracle =
          std::make_shared<core::EcfdFromSAndOmega>(&scripted, &scripted);
      keepalive.push_back(oracle);
      auto& rb = sys->host(p).emplace<broadcast::ReliableBroadcast>();
      cons.push_back(&sys->host(p).emplace<core::ConsensusC>(oracle.get(), &rb));
    }
    sys->start();
    for (ProcessId p = 0; p < n; ++p) cons[static_cast<std::size_t>(p)]->propose(100 + p);
    sys->run_until(horizon);

    bool all = true;
    TimeUs last = 0;
    for (auto* c : cons) {
      if (!c->has_decided()) {
        all = false;
        break;
      }
      last = std::max(last, c->decision()->at);
    }
    if (all) {
      ++out.decided;
      out.mean_ms += static_cast<double>(last) / 1000.0;
    }
  }
  if (out.decided > 0) out.mean_ms /= out.decided;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "e8_stability_window");
  ecfd::bench::section(
      "E8: decision vs leader-stability window (Sec. 2.2 remark)");
  std::cout << "◇C detector alternates stable/chaos windows of width W; "
               "delta=5ms, n=5, 8 seeds, 5s horizon.\nA round needs ~4 "
               "message delays, so W well above ~20ms should suffice and "
               "tiny windows should not.\n";

  ecfd::bench::Table table({"window_ms", "decided", "mean_decide_ms"}, 16);
  table.print_header();
  const int seeds = 8;
  for (DurUs w : {msec(2), msec(5), msec(10), msec(20), msec(40), msec(80),
                  msec(160)}) {
    const Outcome o = run_window(5, w, seeds);
    table.print_row(static_cast<double>(w) / 1000.0,
                    std::to_string(o.decided) + "/" + std::to_string(seeds),
                    o.mean_ms);
  }
  std::cout << "\nShape check: decisions appear once the stable window "
               "exceeds a few round-trips and become universal shortly "
               "after — permanent stability is NOT required.\n";
  return ecfd::bench::finish();
}
