// E7 — engineering microbenchmarks (google-benchmark): simulator kernel
// throughput and end-to-end protocol runs. Not a paper table; documents
// that the substrate is fast enough to make the E1-E6 sweeps cheap.

#include <benchmark/benchmark.h>

#include "consensus/harness.hpp"
#include "fd/heartbeat_p.hpp"
#include "net/scenario.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ecfd;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.schedule(i % 97, [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_ProcessSetOps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ProcessSet a(n), b(n);
  for (int i = 0; i < n; i += 3) a.add(i);
  for (int i = 0; i < n; i += 2) b.add(i);
  for (auto _ : state) {
    ProcessSet u = a | b;
    benchmark::DoNotOptimize(u.size());
    benchmark::DoNotOptimize(u.first_excluded());
  }
}
BENCHMARK(BM_ProcessSetOps)->Arg(16)->Arg(128);

void BM_HeartbeatSecondOfSimTime(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 7;
    cfg.links = LinkKind::kPartialSync;
    cfg.gst = 0;
    auto sys = make_system(cfg);
    for (ProcessId p = 0; p < n; ++p) sys->host(p).emplace<fd::HeartbeatP>();
    sys->start();
    sys->run_until(sec(1));
    benchmark::DoNotOptimize(sys->network().sent_total());
  }
}
BENCHMARK(BM_HeartbeatSecondOfSimTime)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ConsensusEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    consensus::HarnessConfig cfg;
    cfg.scenario.n = n;
    cfg.scenario.seed = seed++;
    cfg.scenario.links = LinkKind::kPartialSync;
    cfg.scenario.gst = 0;
    cfg.algo = consensus::Algo::kEcfdC;
    cfg.fd = consensus::FdStack::kScriptedStable;
    cfg.fd_stable_at = 0;
    auto r = consensus::run_consensus(cfg);
    if (!r.every_correct_decided) state.SkipWithError("did not decide");
    benchmark::DoNotOptimize(r.consensus_msgs);
  }
  state.SetLabel("one full ◇C consensus instance");
}
BENCHMARK(BM_ConsensusEndToEnd)->Arg(5)->Arg(9)->Arg(17)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
