// E7 — engineering microbenchmarks (google-benchmark): simulator kernel
// throughput and end-to-end protocol runs. Not a paper table; documents
// that the substrate is fast enough to make the E1-E6 sweeps cheap.

#include <benchmark/benchmark.h>

#include "consensus/harness.hpp"
#include "fd/heartbeat_p.hpp"
#include "net/scenario.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using namespace ecfd;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.schedule(i % 97, [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

// Steady-state churn: keep `pending` events live and repeatedly pop the
// earliest + schedule a replacement. This is the simulator's real hot loop
// (a sim holds a near-constant working set of timers); fresh-queue
// schedule-then-drain above measures warm-up instead. Range spans 1e3-1e6
// pending to expose the heap's depth scaling.
void BM_EventQueueSteadyStateChurn(benchmark::State& state) {
  const int pending = static_cast<int>(state.range(0));
  sim::EventQueue q;
  Rng rng(42);
  TimeUs now = 0;
  for (int i = 0; i < pending; ++i) {
    q.schedule(static_cast<TimeUs>(rng.below(1000)), [] {});
  }
  for (auto _ : state) {
    q.pop_run([&](TimeUs t, sim::EventId) { now = t; });
    q.schedule(now + 1 + static_cast<TimeUs>(rng.below(1000)), [] {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyStateChurn)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

// Schedule + true-cancel churn at a steady working set. The old queue
// paid an unordered_map erase plus a tombstone that still percolated
// through the heap on pop; the indexed heap removes the entry outright.
void BM_EventQueueScheduleCancelChurn(benchmark::State& state) {
  const int pending = static_cast<int>(state.range(0));
  sim::EventQueue q;
  Rng rng(43);
  std::vector<sim::EventId> ids;
  ids.reserve(static_cast<std::size_t>(pending));
  TimeUs now = 0;
  for (int i = 0; i < pending; ++i) {
    ids.push_back(q.schedule(static_cast<TimeUs>(rng.below(1000)), [] {}));
  }
  for (auto _ : state) {
    // Cancel a random live event, schedule a replacement (a timer reset —
    // exactly what every heartbeat/timeout protocol does per message).
    const auto idx = rng.below(ids.size());
    benchmark::DoNotOptimize(q.cancel(ids[idx]));
    now += 1;
    ids[idx] = q.schedule(now + static_cast<TimeUs>(rng.below(1000)), [] {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleCancelChurn)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

// Broadcast fan-out through the simulated Network: one shared payload
// body, n-1 sends, run to delivery. Items = messages delivered.
void BM_NetworkSendFanOut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 11;
  cfg.links = LinkKind::kReliable;
  auto sys = make_system(cfg);
  sys->start();
  struct Ping {
    int round{0};
  };
  int round = 0;
  for (auto _ : state) {
    Message m = Message::make<Ping>(900, 1, "bench.fanout", Ping{round++});
    m.src = 0;
    for (ProcessId q = 1; q < n; ++q) {
      m.dst = q;
      sys->network().send(m);
    }
    m.payload.reset();
    sys->run_for(msec(50));
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_NetworkSendFanOut)->Arg(8)->Arg(32)->Arg(128);

void BM_ProcessSetOps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ProcessSet a(n), b(n);
  for (int i = 0; i < n; i += 3) a.add(i);
  for (int i = 0; i < n; i += 2) b.add(i);
  for (auto _ : state) {
    ProcessSet u = a | b;
    benchmark::DoNotOptimize(u.size());
    benchmark::DoNotOptimize(u.first_excluded());
  }
}
BENCHMARK(BM_ProcessSetOps)->Arg(16)->Arg(128);

void BM_HeartbeatSecondOfSimTime(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 7;
    cfg.links = LinkKind::kPartialSync;
    cfg.gst = 0;
    auto sys = make_system(cfg);
    for (ProcessId p = 0; p < n; ++p) sys->host(p).emplace<fd::HeartbeatP>();
    sys->start();
    sys->run_until(sec(1));
    benchmark::DoNotOptimize(sys->network().sent_total());
  }
}
BENCHMARK(BM_HeartbeatSecondOfSimTime)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ConsensusEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    consensus::HarnessConfig cfg;
    cfg.scenario.n = n;
    cfg.scenario.seed = seed++;
    cfg.scenario.links = LinkKind::kPartialSync;
    cfg.scenario.gst = 0;
    cfg.algo = consensus::Algo::kEcfdC;
    cfg.fd = consensus::FdStack::kScriptedStable;
    cfg.fd_stable_at = 0;
    auto r = consensus::run_consensus(cfg);
    if (!r.every_correct_decided) state.SkipWithError("did not decide");
    benchmark::DoNotOptimize(r.consensus_msgs);
  }
  state.SetLabel("one full ◇C consensus instance");
}
BENCHMARK(BM_ConsensusEndToEnd)->Arg(5)->Arg(9)->Arg(17)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
