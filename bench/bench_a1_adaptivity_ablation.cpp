// A1 — ablation of the library's own design choices (DESIGN.md §4):
//
//   (a) adaptive timeouts: every detector widens a pair's timeout after a
//       false suspicion. The proofs of eventual accuracy (Theorem 1's
//       "after a bounded number of times the time-out will be larger than
//       2Φ+Δ") rely on it. Ablation: increment = 0 in a network whose
//       post-GST delay bound exceeds the initial timeout — mistakes then
//       never stop.
//   (b) the ring detector's recovery polls: a process that everybody
//       suspects is polled by nobody, so without the occasional direct
//       probe of a suspect, a false suspicion of an isolated process can
//       only be cleared indirectly. Ablation: recovery_every = 0.
//
// Metrics come from the fd/qos.hpp module: false-suspicion episodes and
// query accuracy over a long run.

#include "fd/heartbeat_p.hpp"
#include "fd/qos.hpp"
#include "fd/ring_fd.hpp"
#include "net/scenario.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;

struct Metrics {
  int episodes{};
  double accuracy{};
  bool settled{};  ///< no suspicions of correct processes at the end
};

template <class InstallFn>
Metrics run(std::uint64_t seed, InstallFn install) {
  ScenarioConfig cfg;
  cfg.n = 5;
  cfg.seed = seed;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = msec(300);
  cfg.pre_gst_max = msec(120);
  // Post-GST delays up to 40ms: a heartbeat gap can reach ~50ms, well
  // above the default 30ms initial timeout, so a fixed timeout keeps
  // producing false suspicions forever while an adaptive one stops.
  cfg.delta = msec(40);
  auto sys = make_system(cfg);

  std::vector<const SuspectOracle*> oracles(5, nullptr);
  install(*sys, oracles);
  FdProbe probe(*sys, msec(10));
  for (ProcessId p = 0; p < 5; ++p) probe.attach(p, oracles[static_cast<std::size_t>(p)], nullptr);
  const TimeUs horizon = sec(20);
  probe.start(horizon);
  sys->start();
  sys->run_until(horizon);

  RunFacts facts;
  facts.n = 5;
  facts.correct = ProcessSet::full(5);
  facts.end_time = horizon;
  const QosReport q = compute_qos(facts, {}, probe.samples());

  Metrics m;
  m.episodes = q.mistake_episodes;
  m.accuracy = q.query_accuracy;
  m.settled = true;
  for (ProcessId p = 0; p < 5; ++p) {
    if (!oracles[static_cast<std::size_t>(p)]->suspected().empty()) m.settled = false;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "a1_adaptivity_ablation");
  ecfd::bench::section("A1: adaptivity ablation (timeout widening, ring recovery)");
  std::cout << "n=5, failure-free, post-GST delta=40ms vs initial timeout "
               "30ms, 20s run. QoS over sampled outputs.\n";

  ecfd::bench::Table table({"detector", "variant", "mistakes", "accuracy%",
                            "settled"}, 16);
  table.print_header();

  for (DurUs inc : {msec(10), DurUs{0}}) {
    const Metrics m = run(11, [inc](System& sys,
                                    std::vector<const SuspectOracle*>& out) {
      for (ProcessId p = 0; p < 5; ++p) {
        fd::HeartbeatP::Config hc;
        hc.timeout_increment = inc;
        out[static_cast<std::size_t>(p)] = &sys.host(p).emplace<fd::HeartbeatP>(hc);
      }
    });
    table.print_row("heartbeatP", inc > 0 ? "adaptive" : "fixed-timeout",
                    m.episodes, 100.0 * m.accuracy, m.settled ? "yes" : "NO");
  }

  for (int rec : {4, 0}) {
    const Metrics m = run(12, [rec](System& sys,
                                    std::vector<const SuspectOracle*>& out) {
      for (ProcessId p = 0; p < 5; ++p) {
        fd::RingFd::Config rc;
        rc.recovery_every = rec;
        out[static_cast<std::size_t>(p)] = &sys.host(p).emplace<fd::RingFd>(rc);
      }
    });
    table.print_row("ring", rec > 0 ? "recovery-polls" : "no-recovery",
                    m.episodes, 100.0 * m.accuracy, m.settled ? "yes" : "NO");
  }

  std::cout << "\nShape check: removing timeout adaptation keeps the "
               "mistake stream alive for the whole run (orders of "
               "magnitude more episodes, lower accuracy, typically "
               "unsettled at the end) — the adaptivity every Theorem here "
               "relies on. The ring's recovery polls, by contrast, measure "
               "as redundant in this scenario: a falsely suspected process "
               "washes itself clean through its own outgoing polls, so the "
               "mechanism is belt-and-braces for gossip-path corner "
               "cases.\n";
  return ecfd::bench::finish();
}
