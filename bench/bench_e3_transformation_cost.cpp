// E3 — Section 4: periodic message cost of ◇P implementations.
//
// Paper's comparison:
//   ◇C→◇P transformation (Fig. 2) : 2(n-1) messages per period
//   Chandra-Toueg all-to-all ◇P   : n(n-1)  (quoted as n² in the paper)
//   Ring ◇P of Larrea et al. [15] : 2n
//
// We run each detector in a stable, failure-free system and report the
// steady-state messages per period.

#include "core/c_to_p.hpp"
#include "fd/efficient_p.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/ring_fd.hpp"
#include "fd/scripted_fd.hpp"
#include "net/scenario.hpp"
#include "table.hpp"

namespace {

using namespace ecfd;

ScenarioConfig scenario(int n, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = 0;
  cfg.delta = msec(5);
  return cfg;
}

// Measures messages per period over a 2s steady-state window following a
// 1s warm-up (so startup noise doesn't pollute the rate).
template <class InstallFn>
double msgs_per_period(int n, std::uint64_t seed, DurUs period,
                       InstallFn install) {
  auto sys = make_system(scenario(n, seed));
  install(*sys);
  sys->start();
  sys->run_until(sec(1));
  const auto before = sys->network().sent_total();
  sys->run_until(sec(3));
  const auto sent = sys->network().sent_total() - before;
  const double periods = static_cast<double>(sec(2)) / period;
  return static_cast<double>(sent) / periods;
}

}  // namespace

int main(int argc, char** argv) {
  ecfd::bench::init(argc, argv, "e3_transformation_cost");
  ecfd::bench::section("E3: periodic message cost of ◇P implementations");
  std::cout << "Paper (Sec. 4): Fig.2 transformation 2(n-1) beats "
               "Chandra-Toueg's n^2 and the ring's 2n, with no ring "
               "propagation latency.\n";

  const DurUs period = msec(10);  // all detectors use the default 10ms

  std::cout << "ctp runs over a zero-message scripted Omega; effp is the "
               "Section 4 piggyback construction whose count INCLUDES its "
               "own leader election.\n";

  ecfd::bench::Table table({"n", "ctp_msgs", "effp_msgs", "2(n-1)",
                            "hb_msgs", "n(n-1)", "ring_msgs", "2n"});
  table.print_header();
  for (int n : {4, 8, 16, 32}) {
    const double effp = msgs_per_period(n, 44, period, [n](System& sys) {
      for (ProcessId p = 0; p < n; ++p) sys.host(p).emplace<fd::EfficientP>();
    });
    const double ctp = msgs_per_period(n, 41, period, [n](System& sys) {
      for (ProcessId p = 0; p < n; ++p) {
        std::vector<fd::ScriptedFd::Step> steps;
        steps.push_back({0, ProcessSet(n), 0});  // stable leader p0
        auto& omega = sys.host(p).emplace<fd::ScriptedFd>(steps);
        sys.host(p).emplace<core::CToP>(&omega);
      }
    });
    const double hb = msgs_per_period(n, 42, period, [n](System& sys) {
      for (ProcessId p = 0; p < n; ++p) sys.host(p).emplace<fd::HeartbeatP>();
    });
    const double ring = msgs_per_period(n, 43, period, [n](System& sys) {
      for (ProcessId p = 0; p < n; ++p) sys.host(p).emplace<fd::RingFd>();
    });
    table.print_row(n, ctp, effp, 2 * (n - 1), hb, n * (n - 1), ring, 2 * n);
  }
  std::cout << "\nShape check: ctp ~ 2(n-1) << hb ~ n(n-1); ring ~ 2n plus "
               "its recovery polls.\n";
  return ecfd::bench::finish();
}
